"""The analysis-LLM interface: prompts, completions, budgets, capability profiles.

KernelGPT is model-agnostic (§4 "Analysis LLM"); the pipeline only needs a
backend that accepts a textual prompt and returns a textual completion in the
structured reply format described in :mod:`repro.llm.prompts`.  This module
defines that interface plus:

* :class:`UsageMeter` — token/query accounting (the paper reports ~5.56M
  input tokens, 400K output tokens, $34 for the full generation run);
* :class:`CapabilityProfile` — the knob set that distinguishes a GPT-4-class
  analyst from weaker models in the LLM-choice ablation (§5.2.3);
* :class:`LLMRequest` — one routable unit of a batched query;
* :class:`LLMBackend` — the abstract base class all backends implement.

The query surface is **batched**: :meth:`LLMBackend.complete_batch` is the
primitive every backend implements, and :meth:`LLMBackend.query` is a thin
one-element shim over it.  Real providers amortize per-call overhead across
batched requests (the paper's ~$34 / 5.56M-input-token cost story assumes
as much), so budget reservation, usage metering and in-batch deduplication
all live at batch granularity — see :meth:`LLMBackend._serve_batch` for the
exact contract.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import BackendError, LLMBudgetExceeded


@dataclass(frozen=True)
class Prompt:
    """One prompt sent to the analysis LLM.

    ``kind`` identifies the pipeline stage (``identifier``, ``type``,
    ``dependency``, ``repair``, ``all-in-one``); ``subject`` the handler or
    definition under analysis; ``text`` the full rendered prompt.
    """

    kind: str
    subject: str
    text: str

    def approximate_tokens(self) -> int:
        """Cheap token estimate (4 characters per token, the usual rule of thumb)."""
        return max(1, len(self.text) // 4)


@dataclass(frozen=True)
class Completion:
    """A completion returned by a backend."""

    text: str
    model: str

    def approximate_tokens(self) -> int:
        return max(1, len(self.text) // 4)


@dataclass(frozen=True)
class LLMRequest:
    """One unit of a batched query: a prompt plus routing metadata.

    ``route`` is an opaque routing tag — a capability-profile name, a stage
    kind, anything a :class:`~repro.llm.pool.BackendPool` maps to a member
    backend.  Plain backends ignore it (their completion is a pure function
    of the prompt), but it still participates in cache keys so that routed
    and unrouted asks of the same prompt never serve each other's
    completions.  ``request_id`` is an optional caller-chosen label carried
    through for attribution; it never affects the completion.
    """

    prompt: Prompt
    route: str | None = None
    request_id: str | None = None

    @classmethod
    def of(cls, item: "LLMRequest | Prompt") -> "LLMRequest":
        """Normalize a bare prompt into an unrouted request."""
        return item if isinstance(item, LLMRequest) else cls(prompt=item)

    def batch_key(self) -> tuple:
        """The in-batch dedupe key: full prompt content plus the route."""
        return (self.route, self.prompt.kind, self.prompt.subject, self.prompt.text)


@dataclass
class UsageMeter:
    """Accumulates query/token usage across a generation run.

    Recording is guarded by a lock: one backend may serve many concurrent
    generation sessions (the engine's thread-pool fan-out), and lost updates
    would make usage totals schedule-dependent.

    Meters are picklable (the lock is dropped and recreated), so a backend
    can travel inside a process-pool task payload; worker-side usage comes
    back through :meth:`merge` when the parent joins the batch.
    """

    queries: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    by_kind: dict = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(self, prompt: Prompt, completion: Completion) -> None:
        self.record_batch(((prompt, completion),))

    def record_batch(self, pairs: Iterable[tuple[Prompt, Completion]]) -> None:
        """Record many prompt/completion pairs under one lock acquisition.

        Metering moved to batch granularity with the batched query protocol:
        a backend serving an N-request batch updates the meter once, not N
        times, so contention on the meter lock does not grow with batch size.
        """
        with self._lock:
            for prompt, completion in pairs:
                self.queries += 1
                self.input_tokens += prompt.approximate_tokens()
                self.output_tokens += completion.approximate_tokens()
                kind_stats = self.by_kind.setdefault(prompt.kind, {"queries": 0, "input": 0, "output": 0})
                kind_stats["queries"] += 1
                kind_stats["input"] += prompt.approximate_tokens()
                kind_stats["output"] += completion.approximate_tokens()

    def merge(self, other: "UsageMeter") -> None:
        """Fold another meter's totals into this one (process-mode join).

        ``other`` is expected to be a worker-private meter that is no longer
        being written to; only this meter's lock is taken.
        """
        with self._lock:
            self.queries += other.queries
            self.input_tokens += other.input_tokens
            self.output_tokens += other.output_tokens
            for kind, stats in other.by_kind.items():
                kind_stats = self.by_kind.setdefault(kind, {"queries": 0, "input": 0, "output": 0})
                for counter in ("queries", "input", "output"):
                    kind_stats[counter] += stats[counter]

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def estimated_cost_usd(self, *, input_per_million: float = 5.0, output_per_million: float = 15.0) -> float:
        """Rough dollar cost at GPT-4-class pricing."""
        return (
            self.input_tokens / 1_000_000 * input_per_million
            + self.output_tokens / 1_000_000 * output_per_million
        )

    def summary(self) -> dict:
        return {
            "queries": self.queries,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "avg_input_per_query": self.input_tokens // max(1, self.queries),
            "avg_output_per_query": self.output_tokens // max(1, self.queries),
            "estimated_cost_usd": round(self.estimated_cost_usd(), 2),
        }

    def kind_summary(self) -> dict:
        """Per-prompt-kind usage breakdown, in first-recorded order.

        The attribution behind kind-routed pools: with ``--route
        repair=gpt-3.5`` the cheap member's breakdown shows exactly which
        stage kinds (``repair``) landed on it, and the expensive member's
        shows what stayed.
        """
        with self._lock:
            return {kind: dict(stats) for kind, stats in self.by_kind.items()}


@dataclass(frozen=True)
class CapabilityProfile:
    """How capable a simulated analyst is.

    Probabilities are per-opportunity and drawn from a deterministic
    per-handler stream, so the same kernel + profile always produces the same
    specification corpus.  The default profile models the GPT-4 analyst of
    the paper, calibrated against the §5.1.3 manual audit (3 drivers out of
    45 with missed syscalls, 0.9% wrong identifier values, 9 syscalls with
    wrong types) plus an initial-validation-error rate consistent with the
    Table 1 repair counts.
    """

    name: str = "gpt-4"
    follow_unknown_probability: float = 1.0     # chance to keep following delegation chains
    max_delegation_depth: int = 5
    identifier_error_rate: float = 0.01         # wrong identifier value (uses the rewritten value)
    miss_op_rate: float = 0.015                 # silently drop an operation
    wrong_type_rate: float = 0.03               # wrong/imprecise field type in a struct
    len_relation_rate: float = 0.95             # chance to express count/array len[] semantics
    bad_constant_rate: float = 0.18             # emit a misspelled macro (validation error, repairable)
    undefined_type_rate: float = 0.12           # reference a helper type without defining it (repairable)
    unrepairable_rate: float = 0.08             # handler-level chance that repair cannot converge
    dependency_discovery: bool = True           # follow anon_inode_getfd secondary handlers
    socket_support: bool = True
    readable_names: bool = True

    def degraded(self, **overrides) -> "CapabilityProfile":
        """Return a copy with some knobs overridden (used by ablation profiles)."""
        from dataclasses import replace

        return replace(self, **overrides)


#: The default analyst: GPT-4 as configured in the paper (temperature 0.1).
GPT4_PROFILE = CapabilityProfile()

#: GPT-4o performs on par with GPT-4 in the paper's ablation.
GPT4O_PROFILE = CapabilityProfile(
    name="gpt-4o",
    identifier_error_rate=0.012,
    miss_op_rate=0.02,
    wrong_type_rate=0.035,
    bad_constant_rate=0.2,
)

#: GPT-3.5 misses roughly 40% of syscalls and loses most semantic relations.
GPT35_PROFILE = CapabilityProfile(
    name="gpt-3.5",
    follow_unknown_probability=0.55,
    max_delegation_depth=2,
    identifier_error_rate=0.08,
    miss_op_rate=0.3,
    wrong_type_rate=0.25,
    len_relation_rate=0.2,
    bad_constant_rate=0.3,
    undefined_type_rate=0.2,
    unrepairable_rate=0.25,
    dependency_discovery=False,
    readable_names=False,
)


class LLMBackend(abc.ABC):
    """Abstract base class of every analysis backend.

    :meth:`complete_batch` is the primitive — every backend implements it,
    usually by delegating to the :meth:`_serve_batch` template, which owns
    the batch-granularity semantics (dedupe, budget reservation, metering)
    and calls back into the per-prompt :meth:`complete` hook.  External
    callers may keep using :meth:`query`; it is a one-element batch.
    """

    def __init__(self, *, model: str = "analysis-llm", query_budget: int | None = None):
        self.model = model
        self.usage = UsageMeter()
        self._query_budget = query_budget
        # Budget slots are reserved atomically before completions run, so
        # the budget raises at exactly the same query index whether one or
        # many threads share the backend (a check on usage.queries alone
        # would let concurrent callers race past the limit).
        self._budget_lock = threading.Lock()
        self._reserved_queries = 0

    def query(self, prompt: Prompt) -> Completion:
        """Send one prompt: a thin one-element shim over :meth:`complete_batch`."""
        return self.complete_batch((LLMRequest.of(prompt),))[0]

    def store_profile(self) -> str:
        """A stable identity string for persistent cache keys (repro.store).

        Unlike the engine's in-memory participant tokens — which are
        process-local by design — the store profile must identify "the same
        backend" across interpreter runs: two runs constructing an
        equivalently-configured backend derive the same profile, and two
        backends that could ever answer the same prompt differently derive
        different ones.  The base implementation uses the model string;
        backends whose completions depend on more configuration than the
        model name (the oracle's capability profile, a pool's routing
        table, replay scripts) override this, and transparent wrappers
        (recording, coalescing, frozen) delegate to the backend they wrap
        so the wrapper never splits the key space.
        """
        return self.model

    @abc.abstractmethod
    def complete_batch(self, requests: "Sequence[LLMRequest | Prompt]") -> list[Completion]:
        """Serve a batch of requests, returning completions in request order.

        The primitive of the protocol.  Implementations must honour the
        batch contract (most do so by delegating to :meth:`_serve_batch`):

        * results come back **in request order** — the determinism contract
          callers rebuild their aggregates from;
        * identical requests within one batch (same prompt content and
          route) are **deduped**: computed once, the shared completion
          returned at every duplicate position;
        * the query budget is reserved **atomically for the whole batch**
          (one slot per distinct request) before completions run, and the
          usage meter is updated once per batch.
        """

    def complete(self, prompt: Prompt) -> Completion:
        """Per-prompt completion hook used by the :meth:`_serve_batch` default.

        Backends whose completions are a pure function of one prompt
        implement this and inherit the whole batch contract from
        :meth:`_serve_batch`; backends that forward batches elsewhere (the
        recording wrapper, the pool) override :meth:`complete_batch` itself.
        """
        raise NotImplementedError(f"{type(self).__name__} serves batches only")

    def _serve_batch(
        self,
        requests: "Sequence[LLMRequest | Prompt]",
        *,
        complete_many: "Callable[[list[LLMRequest]], list[Completion]] | None" = None,
    ) -> list[Completion]:
        """The batch template: dedupe, reserve budget, complete, meter.

        Distinct requests are computed in first-appearance order, by default
        one :meth:`complete` call each; ``complete_many`` overrides the
        computation for backends that forward the whole distinct sub-batch
        elsewhere (recording wrapper → inner backend).

        Budget semantics are serial-equivalent on the backend's own state:
        slots for the batch are reserved atomically up front, but when the
        batch needs more slots than remain, the in-budget prefix still
        completes and records usage before :class:`LLMBudgetExceeded`
        raises — the meter totals and remaining budget are exactly what a
        loop of single queries leaves behind, so the budget raises at the
        same query index whether callers batch or not.  The batch *result*
        is all-or-nothing, though: a failed batch delivers no completions
        (there is no partial return through an exception), so layers that
        key off delivery — the engine's memo cache, the recording
        wrapper's transcript — see nothing from the served prefix.  That
        is deliberate: after ``LLMBudgetExceeded`` the run is aborted
        anyway, and an aborted batch must not leave half its results
        behind as if it had succeeded.
        """
        normalized = [LLMRequest.of(item) for item in requests]
        if not normalized:
            return []
        # In-batch dedupe, first-appearance order: positions per distinct key.
        positions_by_key: dict[tuple, list[int]] = {}
        distinct: list[LLMRequest] = []
        for index, request in enumerate(normalized):
            positions = positions_by_key.setdefault(request.batch_key(), [])
            if not positions:
                distinct.append(request)
            positions.append(index)

        granted = len(distinct)
        over_budget = False
        if self._query_budget is not None:
            with self._budget_lock:
                available = max(0, self._query_budget - self._reserved_queries)
                granted = min(len(distinct), available)
                self._reserved_queries += granted
            over_budget = granted < len(distinct)

        served: list[tuple[LLMRequest, Completion]] = []
        try:
            if complete_many is not None:
                completions = complete_many(distinct[:granted])
                served = list(zip(distinct[:granted], completions))
            else:
                for request in distinct[:granted]:
                    served.append((request, self.complete(request.prompt)))
        except BackendError as fault:
            # A typed serving fault: settle the books exactly like the
            # generic path below, then enrich the error with the batch
            # state — which positions (in the caller's request frame)
            # completed and which failed — so a retry layer re-sends only
            # the failed remainder and budgets charge each distinct query
            # once across attempts.
            self._settle_failed_batch(granted, served)
            served_positions: dict[int, Completion] = {}
            failed_entries: list[tuple[int, BaseException]] = []
            if fault.served is not None or fault.failed is not None:
                # An inner backend (complete_many path) attached state
                # relative to the distinct sub-batch; re-map into this
                # caller's request frame, duplicates included.
                sub = distinct[:granted]
                inner_served = fault.served or {}
                inner_failed = dict(fault.failed or ())
                for relative, completion in inner_served.items():
                    for index in positions_by_key[sub[relative].batch_key()]:
                        served_positions[index] = completion
                for relative, request in enumerate(sub):
                    if relative in inner_served:
                        continue
                    exc = inner_failed.get(relative, fault)
                    for index in positions_by_key[request.batch_key()]:
                        failed_entries.append((index, exc))
            else:
                served_keys = {request.batch_key() for request, _ in served}
                for request, completion in served:
                    for index in positions_by_key[request.batch_key()]:
                        served_positions[index] = completion
                failed_entries = [
                    (index, fault)
                    for index, request in enumerate(normalized)
                    if request.batch_key() not in served_keys
                ]
            fault.attach_batch_state(
                served_positions, tuple(sorted(failed_entries, key=lambda entry: entry[0]))
            )
            raise
        except Exception:
            # Unclassified failure (a bug, an interrupt): release the
            # reserved-but-unserved slots; what completed stays reserved
            # and metered, matching a serial loop that failed at the same
            # point.
            self._settle_failed_batch(granted, served)
            raise
        self.usage.record_batch(
            (request.prompt, completion) for request, completion in served
        )
        if over_budget:
            raise LLMBudgetExceeded(
                f"backend {self.model!r} exceeded its query budget of {self._query_budget}"
            )
        results: list[Completion | None] = [None] * len(normalized)
        for request, completion in served:
            for index in positions_by_key[request.batch_key()]:
                results[index] = completion
        return results

    def _settle_failed_batch(
        self, granted: int, served: "list[tuple[LLMRequest, Completion]]"
    ) -> None:
        """Book-keeping for a batch that raised mid-serve.

        Releases the reserved-but-unserved budget slots and meters the
        served prefix, matching a serial loop that failed at the same
        point.
        """
        if self._query_budget is not None:
            with self._budget_lock:
                self._reserved_queries -= granted - len(served)
        if served:
            self.usage.record_batch(
                (request.prompt, completion) for request, completion in served
            )

    def remaining_budget(self) -> int | None:
        """Unreserved query slots, or ``None`` when the backend is unmetered.

        A point-in-time snapshot under the budget lock — schedulers (the
        pool's round-robin member picker) use it to skip exhausted members,
        not to reserve; reservation stays atomic inside ``_serve_batch``.
        """
        if self._query_budget is None:
            return None
        with self._budget_lock:
            return max(0, self._query_budget - self._reserved_queries)

    def note_external_queries(self, queries: int) -> None:
        """Count queries a worker-process copy issued against this budget.

        Process workers enforce the budget on their own pickled copies, each
        starting from the parent's reservation count at fan-out time — so
        during a batch the cap is per-shard, not global.  Merging outcomes
        calls this to restore exact accounting at join: the reservations are
        consumed here, and if the merged total has blown the budget the
        batch fails with ``LLMBudgetExceeded`` just as a shared-memory run
        would have failed mid-batch.
        """
        if queries <= 0:
            return
        with self._budget_lock:
            self._reserved_queries += queries
            over = (
                self._query_budget is not None
                and self._reserved_queries > self._query_budget
            )
        if over:
            raise LLMBudgetExceeded(
                f"backend {self.model!r} exceeded its query budget of {self._query_budget} "
                f"across process shards ({self._reserved_queries} queries issued)"
            )

    # Backends are picklable so they can ride inside process-pool task
    # payloads; locks are recreated on unpickle.  The worker's copy meters
    # and records independently of the parent — outcomes that matter travel
    # back in task return values (see repro.core.tasks).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_budget_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._budget_lock = threading.Lock()


__all__ = [
    "Prompt",
    "Completion",
    "LLMRequest",
    "UsageMeter",
    "CapabilityProfile",
    "GPT4_PROFILE",
    "GPT4O_PROFILE",
    "GPT35_PROFILE",
    "LLMBackend",
]
