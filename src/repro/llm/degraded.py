"""Weaker analysis backends for the LLM-choice ablation (§5.2.3).

The paper compares GPT-4 against GPT-3.5 (much worse: roughly 40% fewer
described syscalls and 21% less coverage) and GPT-4o (on par with GPT-4).
Both are modelled as the same oracle machinery with a different
:class:`~repro.llm.backend.CapabilityProfile`.
"""

from __future__ import annotations

from .backend import CapabilityProfile, GPT35_PROFILE, GPT4O_PROFILE, GPT4_PROFILE
from .oracle import OracleBackend


class DegradedBackend(OracleBackend):
    """An oracle with a weaker capability profile.

    ``DegradedBackend.gpt35()`` / ``.gpt4o()`` build the two ablation
    configurations; arbitrary profiles can be passed for custom studies.
    """

    def __init__(self, profile: CapabilityProfile, *, query_budget: int | None = None):
        super().__init__(profile, query_budget=query_budget)

    @classmethod
    def gpt35(cls, **overrides) -> "DegradedBackend":
        profile = GPT35_PROFILE.degraded(**overrides) if overrides else GPT35_PROFILE
        return cls(profile)

    @classmethod
    def gpt4o(cls, **overrides) -> "DegradedBackend":
        profile = GPT4O_PROFILE.degraded(**overrides) if overrides else GPT4O_PROFILE
        return cls(profile)

    @classmethod
    def gpt4(cls, **overrides) -> "DegradedBackend":
        profile = GPT4_PROFILE.degraded(**overrides) if overrides else GPT4_PROFILE
        return cls(profile)


__all__ = ["DegradedBackend"]
