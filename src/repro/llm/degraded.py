"""Weaker analysis backends for the LLM-choice ablation (§5.2.3).

The paper compares GPT-4 against GPT-3.5 (much worse: roughly 40% fewer
described syscalls and 21% less coverage) and GPT-4o (on par with GPT-4).
Both are modelled as the same oracle machinery with a different
:class:`~repro.llm.backend.CapabilityProfile`.
"""

from __future__ import annotations

from .backend import CapabilityProfile, GPT35_PROFILE, GPT4O_PROFILE, GPT4_PROFILE
from .oracle import OracleBackend


class DegradedBackend(OracleBackend):
    """An oracle with a weaker capability profile.

    ``DegradedBackend.gpt35()`` / ``.gpt4o()`` build the two ablation
    configurations; arbitrary profiles can be passed for custom studies.
    """

    def __init__(self, profile: CapabilityProfile, *, query_budget: int | None = None):
        super().__init__(profile, query_budget=query_budget)

    @classmethod
    def gpt35(cls, **overrides) -> "DegradedBackend":
        profile = GPT35_PROFILE.degraded(**overrides) if overrides else GPT35_PROFILE
        return cls(profile)

    @classmethod
    def gpt4o(cls, **overrides) -> "DegradedBackend":
        profile = GPT4O_PROFILE.degraded(**overrides) if overrides else GPT4O_PROFILE
        return cls(profile)

    @classmethod
    def gpt4(cls, **overrides) -> "DegradedBackend":
        profile = GPT4_PROFILE.degraded(**overrides) if overrides else GPT4_PROFILE
        return cls(profile)


#: Capability-profile backends by CLI/config label — the registry behind
#: ``--backends`` and the ``--route kind=profile`` tables.
PROFILE_FACTORIES = {
    "gpt-4": DegradedBackend.gpt4,
    "gpt-4o": DegradedBackend.gpt4o,
    "gpt-3.5": DegradedBackend.gpt35,
}


def backend_for_profile(label: str) -> DegradedBackend:
    """Build the backend for a capability-profile label, or raise ValueError."""
    factory = PROFILE_FACTORIES.get(label)
    if factory is None:
        raise ValueError(
            f"unknown capability profile {label!r}; choose from {', '.join(PROFILE_FACTORIES)}"
        )
    return factory()


__all__ = ["DegradedBackend", "PROFILE_FACTORIES", "backend_for_profile"]
