"""Quickstart: generate a specification for one driver and fuzz it.

Run with ``python examples/quickstart.py``.
"""

from repro.fuzzer import Fuzzer
from repro.kernel import build_default_kernel
from repro.llm import OracleBackend
from repro.core import KernelGPT


def main() -> None:
    # A reduced synthetic kernel (Table 5 drivers + Table 4 bug drivers + Table 6 sockets).
    kernel = build_default_kernel("small")

    # KernelGPT with the GPT-4-class oracle backend.
    generator = KernelGPT(kernel, OracleBackend())
    result = generator.generate_for_handler("dm_ctl_fops")

    print(f"handler: {result.handler_name}  valid: {result.valid}  repaired: {result.repaired}")
    print(f"device node: {result.device_path}")
    print(f"{result.syscall_count} syscalls, {result.type_count} type definitions\n")
    print(result.suite_text())

    # Feed the generated specification to the coverage-guided fuzzer.
    campaign = Fuzzer(kernel, result.suite, seed=1).run(budget_programs=2000)
    print(f"\nfuzzed {campaign.executed_programs} programs: "
          f"{campaign.coverage_count} blocks covered, {campaign.unique_crashes} unique crashes")
    for title in campaign.crash_log.titles():
        print(f"  crash: {title}")


if __name__ == "__main__":
    main()
