"""The paper's Figure 2 running example: the device-mapper control device.

Compares what SyzDescribe-style static analysis and KernelGPT produce for the
same handler, reproducing the wrong-device-name / wrong-command-value /
untyped-argument failure modes the paper describes, and shows the iterative
prompts exchanged with the analysis backend (Figure 6).
"""

from repro.baselines import SyzDescribe
from repro.core import KernelGPT
from repro.kernel import build_default_kernel
from repro.llm import OracleBackend, RecordingBackend


def main() -> None:
    kernel = build_default_kernel("small")
    backend = RecordingBackend(OracleBackend())
    generator = KernelGPT(kernel, backend)

    print("=== KernelGPT ===")
    result = generator.generate_for_handler("dm_ctl_fops")
    print(result.suite_text())

    print("=== iterative prompts (identifier deduction) ===")
    for prompt in backend.prompts_of_kind("identifier")[:2]:
        print("-" * 60)
        print(prompt.text[:800])

    print("\n=== SyzDescribe ===")
    syzdescribe = SyzDescribe(kernel)
    sd_result = syzdescribe.analyze_handler("dm_ctl_fops")
    if sd_result.suite is None:
        print(f"SyzDescribe could not generate a specification: {sd_result.reason}")
    else:
        print(sd_result.suite.name)

    truth = kernel.driver("device-mapper")
    print(f"\nground truth: device node {truth.device_path}, {len(truth.ops)} ioctl commands, "
          f"{sum(1 for op in truth.ops if op.bug)} injected bugs")


if __name__ == "__main__":
    main()
