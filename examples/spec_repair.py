"""Demonstrates the validation-and-repair loop (§3.2) in isolation.

A deliberately broken specification (wrong macro spelling, missing type
definition) is validated, the error messages are shown, and the repair
stage fixes it against the kernel source — once with the historical
per-query loop and once with the transactional protocol, which snapshots
the suite each round, groups the errors into independent repair items, and
fans every repair prompt of the round out as a single batched LLM
round-trip (see DESIGN.md "Transactional repair protocol").
"""

from repro.core import KernelGPT, RepairTransaction
from repro.extractor import KernelExtractor
from repro.kernel import build_default_kernel
from repro.llm import DegradedBackend
from repro.syzlang import validate_suite


def build_generator(kernel, extractor, repair_mode: str) -> KernelGPT:
    # A deliberately error-prone analyst: more misspelled constants and
    # forgotten type definitions, so repair has plenty to do.
    backend = DegradedBackend.gpt4(
        bad_constant_rate=0.9, undefined_type_rate=0.5, unrepairable_rate=0.0
    )
    return KernelGPT(kernel, backend, extractor=extractor, repair_mode=repair_mode)


def main() -> None:
    kernel = build_default_kernel("small")
    extractor = KernelExtractor(kernel)

    # Peek inside one round: generate without repair, then snapshot the
    # broken suite into a RepairTransaction to see its item grouping.
    broken = KernelGPT(
        kernel,
        DegradedBackend.gpt4(bad_constant_rate=0.9, undefined_type_rate=0.5),
        extractor=extractor,
        repair=False,
    ).generate_for_handler("snapshot_fops")
    report = validate_suite(broken.suite, kernel.constants)
    transaction = RepairTransaction(broken.suite, report)
    print(f"round 1 would repair {len(transaction.items)} item(s) in one LLM batch:")
    for item in transaction.items:
        print(f"  [{item.index}] {item.subject} [{item.code.value}] ({len(item.issues)} issue(s))")
    print()

    for mode in ("per-query", "transactional"):
        result = build_generator(kernel, extractor, mode).generate_for_handler("snapshot_fops")
        print(f"repair mode:     {mode}")
        print(f"initially valid: {result.initially_valid}")
        print(f"repaired:        {result.repaired} (rounds used: {result.repair_rounds_used})")
        print(f"finally valid:   {result.valid}")
        print(f"LLM round-trips: {result.repair_llm_calls} for {result.repair_queries} repair "
              f"prompt(s), {result.repair_conflicts} conflict(s) re-queued")
        report = validate_suite(result.suite, kernel.constants)
        print("final validation:", "clean" if report.is_valid else report.render())
        print()

    print(result.suite_text()[:1200])


if __name__ == "__main__":
    main()
