"""Demonstrates the validation-and-repair loop (§3.2) in isolation.

A deliberately broken specification (wrong macro spelling, missing type
definition) is validated, the error messages are shown, and the repair prompts
fix it against the kernel source.
"""

from repro.core import KernelGPT
from repro.extractor import KernelExtractor
from repro.kernel import build_default_kernel
from repro.llm import DegradedBackend
from repro.syzlang import validate_suite


def main() -> None:
    kernel = build_default_kernel("small")
    extractor = KernelExtractor(kernel)

    # A deliberately error-prone analyst: more misspelled constants and
    # forgotten type definitions, so repair has plenty to do.
    backend = DegradedBackend.gpt4(bad_constant_rate=0.9, undefined_type_rate=0.5, unrepairable_rate=0.0)
    generator = KernelGPT(kernel, backend, extractor=extractor)

    result = generator.generate_for_handler("snapshot_fops")
    print(f"initially valid: {result.initially_valid}")
    print(f"repaired:        {result.repaired} (rounds used: {result.repair_rounds_used})")
    print(f"finally valid:   {result.valid}\n")

    report = validate_suite(result.suite, kernel.constants)
    print("final validation:", "clean" if report.is_valid else report.render())
    print()
    print(result.suite_text()[:1500])


if __name__ == "__main__":
    main()
