"""Socket specification generation (Table 6 scenario).

SyzDescribe cannot analyse socket handlers at all; KernelGPT generates
specifications for them and finds the RDS out-of-bounds bug that hides behind
the missing ``sendto`` description.
"""

from repro.core import KernelGPT
from repro.fuzzer import Fuzzer
from repro.kernel import build_default_kernel
from repro.llm import OracleBackend
from repro.baselines import SyzDescribe, build_syzkaller_corpus


def main() -> None:
    kernel = build_default_kernel("small")
    generator = KernelGPT(kernel, OracleBackend())
    syzdescribe = SyzDescribe(kernel)
    syzkaller = build_syzkaller_corpus(kernel)

    for name in ("rds", "mptcp", "l2tp_ip6"):
        handler = kernel.record_for_name(name).handler_name
        kg = generator.generate_for_handler(handler)
        sd = syzdescribe.analyze_handler(handler)
        existing = syzkaller.get(handler)
        print(f"{name:10s}  KernelGPT: {kg.syscall_count:3d} syscalls  "
              f"Syzkaller: {len(existing) if existing else 0:3d}  "
              f"SyzDescribe: {sd.reason or sd.syscall_count}")

    rds = generator.generate_for_handler("rds_proto_ops")
    campaign = Fuzzer(kernel, rds.suite, seed=3).run(3000)
    print(f"\nfuzzing rds with the generated spec: {campaign.coverage_count} blocks, "
          f"crashes: {list(campaign.crash_log.titles())}")


if __name__ == "__main__":
    main()
