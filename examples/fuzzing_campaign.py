"""A Table 3-style campaign: Syzkaller alone vs Syzkaller + KernelGPT.

Builds the existing-corpus baseline, generates KernelGPT specs for every
handler with missing descriptions, merges the suites and compares coverage,
unique coverage and crashes.
"""

from repro.baselines import build_syzkaller_corpus
from repro.core import KernelGPT, select_target_handlers
from repro.fuzzer import Fuzzer
from repro.kernel import build_default_kernel
from repro.llm import OracleBackend
from repro.syzlang import SpecCorpus


def main() -> None:
    kernel = build_default_kernel("small")
    syzkaller = build_syzkaller_corpus(kernel)
    selection = select_target_handlers(kernel, syzkaller)
    print(f"{len(selection.all_handlers)} handlers have missing descriptions")

    generator = KernelGPT(kernel, OracleBackend())
    run = generator.generate_for_handlers(list(selection.all_handlers))
    kernelgpt = SpecCorpus("kernelgpt")
    for handler, result in run.results.items():
        if result.valid:
            kernelgpt.add(handler, result.suite)
    print(f"KernelGPT generated valid specs for {len(kernelgpt)} handlers "
          f"({run.total_syscalls()} syscalls, {run.total_types()} types)")

    baseline_suite = syzkaller.flatten("syzkaller")
    combined_suite = syzkaller.merge_corpus(kernelgpt).flatten("syzkaller+kernelgpt")

    baseline = Fuzzer(kernel, baseline_suite, seed=7).run(4000)
    combined = Fuzzer(kernel, combined_suite, seed=7).run(4000)

    print(f"\nSyzkaller             cov={baseline.coverage_count:6d} crashes={baseline.unique_crashes}")
    print(f"Syzkaller + KernelGPT cov={combined.coverage_count:6d} crashes={combined.unique_crashes} "
          f"unique-vs-baseline={combined.unique_coverage_vs(baseline)}")
    print("\nbugs only the combined suite reaches:")
    for title in combined.crash_log.titles():
        print(f"  {title}")


if __name__ == "__main__":
    main()
