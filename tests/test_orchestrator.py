"""Campaign orchestrator: DAG scheduling, gates, events, partial re-runs.

The orchestration contract in four parts.  (1) Dispatch is deterministic:
topological order with a stable tie-break by task id, so event sequences
and rendered outputs are byte-identical across jobs × executor.  (2)
Failure is typed: retry budgets exhaust into ``CampaignTaskFailed``,
downstream tasks skip, failing gates raise ``CampaignGateFailed``.  (3)
The event log is schema'd: every emitted event validates, round-trips
through the JSONL file, and splits cleanly into volatile (timing) and
deterministic fields — determinism rule 10.  (4) Re-runs are digest-keyed:
against the same artifact store, clean tasks are served as ``task_reused``
and only the dirty subgraph re-executes.

Executors are constructed explicitly (as in the determinism matrix) so the
process cells exercise a real pool even on a single-core CI host.
"""

import json

import pytest

from repro.engine import (
    ExecutionEngine,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
)
from repro.errors import (
    CampaignGateFailed,
    CampaignPlanError,
    CampaignTaskFailed,
    EventLogError,
    StoreCorruption,
)
from repro.experiments.config import quick
from repro.orchestrator import (
    CampaignPlan,
    CampaignTask,
    EventLog,
    build_campaign_plan,
    campaign_key,
    deterministic_view,
    read_events,
    run_campaign_plan,
    task_input_digest,
)
from repro.orchestrator.events import EVENT_SCHEMA, VOLATILE_FIELDS, validate_event
from repro.orchestrator.verifier import bench_floor_gate, store_verify_gate
from repro.store import ArtifactStore


def _engine(kind: str, jobs: int) -> ExecutionEngine:
    if kind == "serial" or jobs <= 1:
        executor = SerialExecutor()
    elif kind == "thread":
        executor = ThreadPoolExecutor(jobs)
    else:
        executor = ProcessPoolExecutor(jobs)
    return ExecutionEngine(jobs=jobs, executor=executor)


def _echo_plan(text_for: dict[str, str] | None = None) -> CampaignPlan:
    """A diamond DAG of cheap echo tasks: a → {b, c} → d."""
    texts = text_for or {}
    tasks = [
        CampaignTask.make("a", "echo", {"text": texts.get("a", "A")}),
        CampaignTask.make("b", "echo", {"text": texts.get("b", "B")}, depends_on=("a",)),
        CampaignTask.make("c", "echo", {"text": texts.get("c", "C")}, depends_on=("a",)),
        CampaignTask.make("d", "echo", {"text": texts.get("d", "D")}, depends_on=("b", "c")),
    ]
    return CampaignPlan(tasks, quick())


# ------------------------------------------------------------------ plans
class TestCampaignPlan:
    def test_topological_order_with_stable_tiebreak(self):
        # Ready tasks dispatch in task-id order, not insertion order.
        tasks = [
            CampaignTask.make("z-root", "echo"),
            CampaignTask.make("a-root", "echo"),
            CampaignTask.make("m-leaf", "echo", depends_on=("z-root", "a-root")),
        ]
        plan = CampaignPlan(tasks, quick())
        assert [task.task_id for task in plan.topological_order()] == [
            "a-root", "z-root", "m-leaf",
        ]

    def test_duplicate_task_id_rejected(self):
        tasks = [CampaignTask.make("a", "echo"), CampaignTask.make("a", "echo")]
        with pytest.raises(CampaignPlanError, match="duplicate"):
            CampaignPlan(tasks, quick())

    def test_unknown_dependency_rejected(self):
        with pytest.raises(CampaignPlanError, match="unknown task"):
            CampaignPlan([CampaignTask.make("a", "echo", depends_on=("ghost",))], quick())

    def test_self_dependency_rejected(self):
        with pytest.raises(CampaignPlanError, match="itself"):
            CampaignPlan([CampaignTask.make("a", "echo", depends_on=("a",))], quick())

    def test_cycle_rejected(self):
        tasks = [
            CampaignTask.make("a", "echo", depends_on=("b",)),
            CampaignTask.make("b", "echo", depends_on=("a",)),
        ]
        with pytest.raises(CampaignPlanError, match="cycle"):
            CampaignPlan(tasks, quick())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(CampaignPlanError, match="unknown experiments"):
            build_campaign_plan(quick(), experiments=["table99"])

    def test_standard_plan_shape(self):
        plan = build_campaign_plan(quick(), store="somewhere")
        ids = [task.task_id for task in plan.topological_order()]
        assert ids[0] == "generate"
        assert set(ids[-3:]) == {"gate:determinism", "gate:bench_floors", "gate:store_verify"}
        # Fuzz-driven tables hang off the fuzz stage, generation tables off
        # validate; gates depend on every report and never cache.
        assert plan.task("report:table5").depends_on == ("fuzz",)
        assert plan.task("report:figure7").depends_on == ("validate",)
        assert len(plan.task("gate:determinism").depends_on) == 9
        assert not plan.task("gate:determinism").cacheable

    def test_input_digest_depends_on_upstream_outputs(self):
        plan = _echo_plan()
        cfg = plan.config_digest()
        task = plan.task("b")
        one = task_input_digest(task, cfg, {"a": "digest-one"})
        two = task_input_digest(task, cfg, {"a": "digest-two"})
        assert one != two
        assert task_input_digest(task, cfg, {"a": "digest-one"}) == one


# ------------------------------------------------------- dispatch determinism
class TestDeterministicDispatch:
    MATRIX = [(1, "serial"), (1, "thread"), (1, "process"),
              (4, "serial"), (4, "thread"), (4, "process")]

    def _run(self, jobs: int, kind: str):
        log = EventLog()
        result = run_campaign_plan(_echo_plan(), engine=_engine(kind, jobs), events=log)
        assert result.passed
        views = [deterministic_view(event) for event in log.events]
        outputs = {task_id: outcome.output for task_id, outcome in result.outcomes.items()}
        return views, outputs

    def test_event_log_and_outputs_identical_across_jobs_and_executors(self):
        baseline_views, baseline_outputs = self._run(*self.MATRIX[0])
        started = [view["task_id"] for view in baseline_views if view["type"] == "task_started"]
        assert started == ["a", "b", "c", "d"]
        for jobs, kind in self.MATRIX[1:]:
            views, outputs = self._run(jobs, kind)
            assert views == baseline_views, (jobs, kind)
            assert outputs == baseline_outputs, (jobs, kind)

    @pytest.mark.parametrize("jobs,kind", [(1, "serial"), (4, "thread"), (4, "process")])
    def test_real_experiment_subset_byte_identical(self, jobs, kind, tmp_path):
        # A real (quick-preset) campaign slice: generate → validate →
        # report:figure7, no gates.  The rendered table must be
        # byte-identical at every cell, and so must the deterministic view
        # of the event log (rule 10).
        plan = build_campaign_plan(quick(), experiments=["figure7"], gates=False)
        log = EventLog(tmp_path / f"events-{jobs}-{kind}.jsonl")
        result = run_campaign_plan(plan, engine=_engine(kind, jobs), events=log)
        assert result.passed
        text = result.output("report:figure7")["text"]
        views = [deterministic_view(event) for event in log.events]
        if not hasattr(type(self), "_baseline"):
            type(self)._baseline = (text, views)
        else:
            assert (text, views) == type(self)._baseline, (jobs, kind)


# ---------------------------------------------------------- retries/failure
class TestRetriesAndFailure:
    def test_retry_budget_exhaustion_is_typed(self):
        tasks = [
            CampaignTask.make("flaky", "fail_until", {"succeed_at": 10}, retries=1),
            CampaignTask.make("downstream", "echo", depends_on=("flaky",)),
        ]
        log = EventLog()
        result = run_campaign_plan(CampaignPlan(tasks, quick()), events=log)
        assert not result.passed
        assert result.skipped["downstream"] == ("flaky",)
        types = [event["type"] for event in log.events]
        assert types.count("task_retried") == 1
        assert types.count("task_failed") == 1
        assert "task_skipped" in types
        with pytest.raises(CampaignTaskFailed) as excinfo:
            result.raise_for_status()
        assert excinfo.value.task_id == "flaky"
        assert excinfo.value.attempts == 2  # retries=1 → two attempts

    def test_retry_budget_recovers_within_budget(self):
        tasks = [CampaignTask.make("flaky", "fail_until", {"succeed_at": 2}, retries=2)]
        log = EventLog()
        result = run_campaign_plan(CampaignPlan(tasks, quick()), events=log)
        assert result.passed
        assert result.outcomes["flaky"].attempts == 2
        types = [event["type"] for event in log.events]
        assert types.count("task_retried") == 1
        assert types.count("task_finished") == 1


# ------------------------------------------------------------------- gates
class TestGates:
    def _failing_bench_dir(self, tmp_path):
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "BENCH_broken.json").write_text(json.dumps({
            "benchmark": "campaign-orchestrator",
            "rows": [{"reuse_speedup": 1.0, "check_floor": 2.0}],
        }))
        return bench

    def test_gate_failure_fails_campaign(self, tmp_path):
        tasks = [
            CampaignTask.make("a", "echo", {"text": "A"}),
            CampaignTask.make(
                "gate:bench_floors", "gate",
                {"gate": "bench_floors", "bench_dir": str(self._failing_bench_dir(tmp_path))},
                depends_on=("a",), cacheable=False,
            ),
        ]
        log = EventLog()
        result = run_campaign_plan(CampaignPlan(tasks, quick()), events=log)
        assert result.failed_gates == ("gate:bench_floors",)
        assert not result.passed
        assert [e["type"] for e in log.events if e["type"].startswith("gate_")] == ["gate_failed"]
        with pytest.raises(CampaignGateFailed) as excinfo:
            result.raise_for_status()
        assert excinfo.value.gates == ("gate:bench_floors",)
        assert "headline 1.00" in excinfo.value.details["gate:bench_floors"]

    def test_bench_floor_gate_vacuous_pass_without_trajectories(self, tmp_path):
        verdict = bench_floor_gate(str(tmp_path / "nowhere"))
        assert verdict.passed and "vacuous" in verdict.detail

    def test_bench_floor_gate_passes_at_floor(self, tmp_path):
        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "BENCH_ok.json").write_text(json.dumps({
            "benchmark": "campaign-orchestrator",
            "rows": [{"reuse_speedup": 2.0, "check_floor": 2.0}],
        }))
        verdict = bench_floor_gate(str(bench))
        assert verdict.passed
        assert verdict.metrics["trajectories"]["BENCH_ok.json"]["headline"] == 2.0

    def test_store_verify_gate(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.save(campaign_key("a", "digest"), {"echo": "A"})
        verdict = store_verify_gate(str(tmp_path / "store"))
        assert verdict.passed and verdict.metrics["artifacts"] == 1
        # Corrupt the blob: the gate must fail with the corruption detail.
        blobs = list((tmp_path / "store" / "objects").iterdir())
        blobs[0].write_bytes(b"garbage")
        verdict = store_verify_gate(str(tmp_path / "store"))
        assert not verdict.passed and "StoreCorruption" in verdict.detail


# ------------------------------------------------------------------ events
class TestEventLog:
    def test_schema_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("campaign_started", campaign="test", config_digest="abc", tasks=2)
            log.emit("task_scheduled", task_id="a", digest="d1")
            log.emit("task_started", task_id="a", digest="d1", attempt=1)
            log.emit("task_finished", task_id="a", digest="d1", output_digest="o1",
                     attempt=1, duration=0.5)
            log.emit("gate_passed", task_id="gate:x", gate="x", detail="ok")
            log.emit("campaign_finished", passed=True, executed=1, reused=0,
                     failed=0, gates_failed=0, wall=1.0)
        records = read_events(path)
        assert records == log.events
        assert [record["seq"] for record in records] == [1, 2, 3, 4, 5, 6]

    def test_unknown_event_type_rejected(self):
        log = EventLog()
        with pytest.raises(EventLogError, match="unknown event type"):
            log.emit("task_teleported", task_id="a")

    def test_missing_required_field_rejected(self):
        log = EventLog()
        with pytest.raises(EventLogError, match="missing required fields"):
            log.emit("task_started", task_id="a")  # no digest/attempt

    def test_reader_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "task_scheduled", "seq": 1, "ts": 0.0}\n')
        with pytest.raises(EventLogError, match="line 1"):
            read_events(path)
        path.write_text("not json\n")
        with pytest.raises(EventLogError, match="not valid JSON"):
            read_events(path)

    def test_deterministic_view_strips_only_volatile_fields(self):
        record = validate_event({
            "type": "task_finished", "seq": 3, "ts": 123.0, "task_id": "a",
            "digest": "d", "output_digest": "o", "attempt": 1,
            "duration": 0.25, "worker": "w-1",
        })
        view = deterministic_view(record)
        assert view == {"type": "task_finished", "seq": 3, "task_id": "a",
                        "digest": "d", "output_digest": "o", "attempt": 1}
        assert set(record) - set(view) <= VOLATILE_FIELDS
        # Every schema'd required field survives except the volatile ones.
        for kind, required in EVENT_SCHEMA.items():
            assert required - VOLATILE_FIELDS, kind


# ------------------------------------------------------------ partial re-runs
class TestPartialRerun:
    def test_second_run_reuses_every_clean_task(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = run_campaign_plan(_echo_plan(), store=store)
        assert first.executed == 4 and first.reused == 0
        log = EventLog()
        second = run_campaign_plan(_echo_plan(), store=store, events=log)
        assert second.reused == 4 and second.executed == 0
        reused = [event["task_id"] for event in log.events if event["type"] == "task_reused"]
        assert reused == ["a", "b", "c", "d"]
        assert second.outcomes["d"].output == first.outcomes["d"].output

    def test_dirty_subgraph_reexecutes_clean_siblings_reuse(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_campaign_plan(_echo_plan(), store=store)
        # Dirty b (new params): b and its dependant d must re-execute; a and
        # the untouched sibling c stay clean and load from the store.
        log = EventLog()
        result = run_campaign_plan(_echo_plan({"b": "B2"}), store=store, events=log)
        assert result.passed
        reused = sorted(e["task_id"] for e in log.events if e["type"] == "task_reused")
        executed = sorted(e["task_id"] for e in log.events if e["type"] == "task_started")
        assert reused == ["a", "c"]
        assert executed == ["b", "d"]
        assert result.outcomes["d"].output["upstream"] == ["b", "c"]

    def test_gates_never_reuse(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        tasks = [
            CampaignTask.make("a", "echo", {"text": "A"}),
            CampaignTask.make("gate:bench_floors", "gate",
                              {"gate": "bench_floors",
                               "bench_dir": str(tmp_path / "missing")},
                              depends_on=("a",), cacheable=False),
        ]
        run_campaign_plan(CampaignPlan(tasks, quick()), store=store)
        log = EventLog()
        second = run_campaign_plan(CampaignPlan(tasks, quick()), store=store, events=log)
        assert second.passed
        reused = [e["task_id"] for e in log.events if e["type"] == "task_reused"]
        started = [e["task_id"] for e in log.events if e["type"] == "task_started"]
        assert reused == ["a"]
        assert started == ["gate:bench_floors"]


# ----------------------------------------------------------------- storage
class TestCampaignArtifacts:
    def test_campaign_codec_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = campaign_key("report:table1", "digest")
        value = {"experiment": "table1", "text": "t", "audit": "a", "n": 3}
        store.save(key, value)
        assert store.load(key) == value

    def test_campaign_codec_rejects_wrong_magic(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = campaign_key("x", "digest")
        store.put_bytes(key, b"RSP1\n" + b"pickle-bytes")
        with pytest.raises(StoreCorruption, match="wrong encoding magic"):
            store.load(key)


# --------------------------------------------------------------------- CLI
class TestCampaignCLI:
    def test_campaign_cli_writes_outputs_and_events(self, tmp_path, capsys):
        from repro.orchestrator.cli import campaign_main

        code = campaign_main([
            "--preset", "quick", "-e", "figure7", "--no-gates",
            "--events", str(tmp_path / "events.jsonl"),
            "--output", str(tmp_path / "out"),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        rendered = (tmp_path / "out" / "figure7.txt").read_text()
        assert stdout == rendered + "\n"
        events = read_events(tmp_path / "events.jsonl")
        assert events[0]["type"] == "campaign_started"
        assert events[-1]["type"] == "campaign_finished" and events[-1]["passed"]

    def test_campaign_cli_gate_failure_exits_nonzero(self, tmp_path, capsys):
        from repro.orchestrator.cli import campaign_main

        bench = tmp_path / "bench"
        bench.mkdir()
        (bench / "BENCH_broken.json").write_text(json.dumps({
            "benchmark": "campaign-orchestrator",
            "rows": [{"reuse_speedup": 1.0, "check_floor": 2.0}],
        }))
        code = campaign_main([
            "--preset", "quick", "-e", "figure7",
            "--bench", str(bench),
            "--events", str(tmp_path / "events.jsonl"),
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "campaign failed" in captured.err
        events = read_events(tmp_path / "events.jsonl")
        failed = [e for e in events if e["type"] == "gate_failed"]
        assert [e["gate"] for e in failed] == ["bench_floors"]
