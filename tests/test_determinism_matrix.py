"""Cross-jobs determinism matrix: jobs x executor must never change output.

The acceptance contract for process sharding: for every combination of
``jobs ∈ {1, 2, 4}`` and ``executor ∈ {serial, thread, process}``, a
generation campaign produces byte-identical suites with identical
session-attributed query counts, and a fuzz campaign produces identical
coverage/crash results — all compared against a plain engine-less serial
run.  The repair-mode axis additionally pins the transactional repair
protocol: byte-identical to its own serial baseline at every cell, and
valid-or-exhausted equivalent to the per-query loop (see
``test_transactional_repair_matrix``).  Executors are constructed
explicitly (not via ``create_executor``) so
the matrix exercises real thread/process pools even on a single-core CI
host, where the default budget policy would lease them down to one worker.
"""

import pytest

from repro.core import KernelGPT
from repro.engine import (
    ExecutionEngine,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
)
from repro.fuzzer import run_repeated_campaigns
from repro.llm import OracleBackend, Prompt, RecordingBackend, ReplayBackend

#: Small but representative: a repair-heavy driver (cec), a delegating
#: driver (dm), a socket handler (rds) and a plain driver (udmabuf).
HANDLERS = ["dm_ctl_fops", "cec_devnode_fops", "rds_proto_ops", "udmabuf_fops"]

JOBS_LEVELS = (1, 2, 4)
EXECUTOR_KINDS = ("serial", "thread", "process")


def _engine(kind: str, jobs: int) -> ExecutionEngine:
    if kind == "serial" or jobs <= 1:
        executor = SerialExecutor()
    elif kind == "thread":
        executor = ThreadPoolExecutor(jobs)
    else:
        executor = ProcessPoolExecutor(jobs)
    return ExecutionEngine(jobs=jobs, executor=executor)


# ------------------------------------------------------------- generation
@pytest.fixture(scope="module")
def generation_baseline(small_kernel, extractor):
    """The engine-less serial run every matrix cell must reproduce.

    Built with ``batch_queries=False`` — the strictly per-query schedule of
    the pre-batching pipeline — so the batched cells prove the batched
    protocol changes nothing, not merely that it agrees with itself.
    """
    generator = KernelGPT(small_kernel, OracleBackend(), extractor=extractor, batch_queries=False)
    run = generator.generate_for_handlers(HANDLERS)
    suites = {handler: result.suite_text() for handler, result in run.results.items()}
    queries = {handler: result.queries for handler, result in run.results.items()}
    flags = {handler: (result.valid, result.repaired) for handler, result in run.results.items()}
    return suites, queries, run.usage_summary(), flags


@pytest.mark.parametrize("batched", (True, False), ids=("batched", "per-query"))
@pytest.mark.parametrize("jobs", JOBS_LEVELS)
@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
def test_generation_matrix_is_byte_identical(
    small_kernel, extractor, generation_baseline, kind, jobs, batched
):
    """Every (jobs, executor, batched) cell reproduces the serial baseline.

    The ``batched`` axis pins the batched-session contract: submitting each
    stage's prompts as one ``complete_batch`` (the default) and the
    per-query path must produce the same bytes, query counts and usage as
    each other and as the engine-less serial baseline.
    """
    baseline_suites, baseline_queries, baseline_usage, _ = generation_baseline
    engine = _engine(kind, jobs)
    generator = KernelGPT(
        small_kernel, OracleBackend(), extractor=extractor, engine=engine,
        batch_queries=batched,
    )
    run = generator.generate_for_handlers(HANDLERS, engine=engine)

    suites = {handler: result.suite_text() for handler, result in run.results.items()}
    queries = {handler: result.queries for handler, result in run.results.items()}
    assert list(suites) == list(baseline_suites)      # handler order preserved
    assert suites == baseline_suites                  # byte-identical suites
    assert queries == baseline_queries                # identical query counts
    assert run.usage_summary() == baseline_usage      # derived usage identical


# ----------------------------------------------------- repair-mode axis
@pytest.fixture(scope="module")
def transactional_baseline(small_kernel, extractor):
    """The engine-less serial transactional run every repair-mode cell
    must reproduce byte for byte."""
    generator = KernelGPT(
        small_kernel, OracleBackend(), extractor=extractor, repair_mode="transactional"
    )
    run = generator.generate_for_handlers(HANDLERS)
    suites = {handler: result.suite_text() for handler, result in run.results.items()}
    queries = {handler: result.queries for handler, result in run.results.items()}
    flags = {handler: (result.valid, result.repaired) for handler, result in run.results.items()}
    return suites, queries, flags


@pytest.mark.parametrize("jobs", JOBS_LEVELS)
@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
def test_transactional_repair_matrix(
    small_kernel, extractor, transactional_baseline, generation_baseline, kind, jobs
):
    """The repair-mode axis of the matrix, both halves of its contract:

    * **determinism** — a transactional run is byte-identical to the
      engine-less serial transactional baseline at every (jobs, executor)
      cell (snapshot prompts and the rule-7 commit order make the round a
      pure function of the round-start suite, so scheduling cannot leak);
    * **equivalence** — its valid-or-exhausted outcome and ``repaired``
      flags match the per-query baseline on the replay corpus, which is
      what keeps the per-query loop an oracle rather than a second mode
      with different results.
    """
    baseline_suites, baseline_queries, baseline_flags = transactional_baseline
    _, _, _, per_query_flags = generation_baseline
    engine = _engine(kind, jobs)
    generator = KernelGPT(
        small_kernel, OracleBackend(), extractor=extractor, engine=engine,
        repair_mode="transactional",
    )
    run = generator.generate_for_handlers(HANDLERS, engine=engine)
    assert {h: r.suite_text() for h, r in run.results.items()} == baseline_suites
    assert {h: r.queries for h, r in run.results.items()} == baseline_queries
    flags = {h: (r.valid, r.repaired) for h, r in run.results.items()}
    assert flags == baseline_flags
    assert flags == per_query_flags


def test_process_generation_enforces_query_budget_at_join(small_kernel, extractor):
    """A blown query budget fails the batch in process mode too.

    Worker copies enforce the budget per shard during the batch; the join
    charges the merged total against the parent's reservations, so the run
    still ends in LLMBudgetExceeded exactly like a shared-memory run.
    """
    from repro.errors import LLMBudgetExceeded

    # HANDLERS need ~100 queries total but no single handler needs more
    # than ~35, so a budget of 60 passes every per-shard check and the
    # violation is only detectable at the merge — which must raise.
    backend = OracleBackend(query_budget=60)
    generator = KernelGPT(small_kernel, backend, extractor=extractor)
    with pytest.raises(LLMBudgetExceeded):
        generator.generate_for_handlers(HANDLERS, engine=_engine("process", 2))
    # Usage/exchange merging still happened before the raise.
    assert backend.usage.queries > 60


def test_pickled_recording_backend_starts_with_empty_transcript(small_kernel, extractor):
    """Task payloads must not ship the parent's accumulated exchanges."""
    import pickle

    backend = RecordingBackend(OracleBackend())
    backend.query(Prompt(kind="identifier", subject="x", text="## Registration\nnothing\n"))
    assert len(backend.exchanges) == 1
    clone = pickle.loads(pickle.dumps(backend))
    assert clone.exchanges == []


@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
def test_pool_routed_generation_matrix(small_kernel, extractor, generation_baseline, kind):
    """A BackendPool member routed by tag reproduces the direct-backend run.

    The multi-backend frontend must be invisible to determinism: a
    generator whose requests route through a pool to the same capability
    profile produces the baseline bytes on every executor kind.
    """
    from repro.llm import BackendPool, DegradedBackend

    baseline_suites, baseline_queries, _, _ = generation_baseline
    pool = BackendPool({"gpt-4": DegradedBackend.gpt4(), "gpt-3.5": DegradedBackend.gpt35()})
    engine = _engine(kind, 2)
    generator = KernelGPT(
        small_kernel, pool, extractor=extractor, engine=engine, backend_route="gpt-4"
    )
    run = generator.generate_for_handlers(HANDLERS, engine=engine)
    assert {h: r.suite_text() for h, r in run.results.items()} == baseline_suites
    assert {h: r.queries for h, r in run.results.items()} == baseline_queries


def test_process_generation_merges_worker_side_effects(small_kernel, extractor):
    """Process workers' usage and exchanges come back to the parent backend."""
    backend = RecordingBackend(OracleBackend())
    engine = _engine("process", 2)
    generator = KernelGPT(small_kernel, backend, extractor=extractor)
    run = generator.generate_for_handlers(HANDLERS, engine=engine)
    assert set(run.results) == set(HANDLERS)
    # Workers run engine-less (no memo cache), so merged usage equals the
    # session-attributed totals exactly.
    assert backend.usage.queries == sum(r.queries for r in run.results.values())
    assert len(backend.exchanges) == backend.usage.queries
    # The merged transcript is in task-submission order: every handler's
    # prompts appear, grouped per task.
    subjects = {exchange.prompt.subject for exchange in backend.exchanges}
    assert subjects.issuperset({"dm_ctl_fops", "rds_proto_ops"})


# ---------------------------------------------------------- fuzz campaigns
@pytest.fixture(scope="module")
def campaign_inputs(small_kernel, syzkaller_corpus):
    return small_kernel, syzkaller_corpus.flatten("syzkaller")


@pytest.fixture(scope="module")
def campaign_baseline(campaign_inputs):
    kernel, suite = campaign_inputs
    campaigns = run_repeated_campaigns(kernel, suite, repetitions=2, budget_programs=120, base_seed=13)
    return [
        (c.seed, sorted(c.coverage), sorted(c.crash_log.bug_ids()), c.executed_programs)
        for c in campaigns
    ]


@pytest.mark.parametrize("jobs", JOBS_LEVELS)
@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
def test_campaign_matrix_is_identical(campaign_inputs, campaign_baseline, kind, jobs):
    kernel, suite = campaign_inputs
    campaigns = run_repeated_campaigns(
        kernel, suite, repetitions=2, budget_programs=120, base_seed=13,
        engine=_engine(kind, jobs),
    )
    observed = [
        (c.seed, sorted(c.coverage), sorted(c.crash_log.bug_ids()), c.executed_programs)
        for c in campaigns
    ]
    assert observed == campaign_baseline


# ------------------------------------------------------------- replay path
def _scripted_backend() -> ReplayBackend:
    backend = ReplayBackend(default="## IDENTIFIERS\n(none)\n## UNKNOWN\n(none)\n")
    backend.script(
        Prompt(kind="identifier", subject="h0", text="probe-0"),
        "## IDENTIFIERS\n- IDENT: CMD_ZERO | SYSCALL: ioctl\n## UNKNOWN\n(none)\n",
    )
    return backend


@pytest.mark.parametrize("jobs", JOBS_LEVELS)
@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
def test_replay_backend_is_engine_safe(kind, jobs):
    """Content-keyed replay serves the same reply at any jobs level."""
    from repro.engine import TaskSpec

    backend = _scripted_backend()
    engine = _engine(kind, jobs)
    prompts = [Prompt(kind="identifier", subject=f"h{i}", text=f"probe-{i}") for i in range(8)]
    tasks = [TaskSpec(key=p.subject, fn=backend.query, args=(p,)) for p in prompts]
    if not engine.shares_memory:
        # Process workers get pickled backend copies; replies are pure
        # functions of prompt content, so the kind of pool changes nothing.
        tasks = [TaskSpec(key=p.subject, fn=_query_scripted, args=(p,)) for p in prompts]
    results = engine.run_tasks("replay", tasks)
    texts = [r.value.text for r in results]
    assert "CMD_ZERO" in texts[0]
    assert all("(none)" in text for text in texts[1:])


def _query_scripted(prompt: Prompt):
    """Module-level so process pools can pickle the replay task."""
    return _scripted_backend().query(prompt)


# ------------------------------------------------------------ store axis
def test_table1_store_matrix(small_kernel, tmp_path):
    """The persistence axis of the matrix: cold vs warm vs frozen.

    One table1 render per store state — cold (empty store, every artifact
    computed and written through), warm (fresh process-equivalent context
    over the populated store, hydrating instead of recomputing) and frozen
    (loads pinned by a lockfile, the analyst replaced by a backend whose
    every ``complete_batch`` raises) — must produce byte-identical text.
    That is determinism rule 9: store state may change *where* a value
    comes from and how many round-trips happen, never the output bytes.
    The frozen cell completing at all proves zero live backend traffic.
    """
    from repro.experiments.config import quick
    from repro.experiments.context import EvaluationContext
    from repro.experiments.table1 import run_table1
    from repro.llm import OracleBackend
    from repro.store import ArtifactStore, FrozenBackend, FrozenLock, StoreBinding

    config = quick().with_overrides(kernel_scale="small")
    store = ArtifactStore(tmp_path / "store")

    def render(binding, analysis_backend=None) -> str:
        engine = ExecutionEngine(jobs=1, store=binding)
        ctx = EvaluationContext(
            config, small_kernel, engine=engine, analysis_backend=analysis_backend
        )
        return run_table1(ctx).render()

    cold_binding = StoreBinding(store)
    cold = render(cold_binding)
    assert cold_binding.stats()["store:session"]["misses"] > 0
    assert cold_binding.stats()["store:session"]["hits"] == 0

    lock = FrozenLock.freeze(store)
    assert len(lock) > 0

    warm_binding = StoreBinding(store)
    warm = render(warm_binding)
    assert warm_binding.stats()["store:session"]["hits"] > 0
    assert warm_binding.stats()["store:session"]["misses"] == 0

    frozen_binding = StoreBinding(store, frozen=lock)
    frozen = render(frozen_binding, analysis_backend=FrozenBackend(OracleBackend()))
    assert frozen_binding.stats()["store:session"]["hits"] > 0

    assert cold == warm == frozen
