"""Torture tests for the persistent content-addressed artifact store.

Four stress axes, mirroring the store's failure budget:

* **round-trips** — every artifact kind loads back equal after a save, and
  equal values serialize to byte-identical blobs;
* **key stability** — canonical keys are pure content digests: two
  interpreter runs under different ``PYTHONHASHSEED``\\ s derive the same
  canonical strings (nothing process-local ever leaks into a key);
* **corruption** — a bit-flipped or truncated blob, a hand-edited manifest
  line, an entry naming a missing blob, and a tampered lockfile all raise
  typed :class:`~repro.errors.StoreCorruption`; the store never serves
  wrong bytes;
* **races** — concurrent writers of the same key (threads in one process,
  and separate processes through the flock discipline) leave exactly one
  valid blob per distinct content and a manifest that still verifies.

Plus the frozen-mode contract (pinned loads, strict-kind misses as
:class:`~repro.errors.FrozenStoreMiss`, non-strict fallback, the raising
:class:`~repro.store.FrozenBackend`) and the warm-start accounting rule:
store hydration happens above the backend, so a warm rerun advances no
usage meter, no replay occurrence counter and no recorded transcript.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.engine import ExecutionEngine
from repro.errors import FrozenStoreMiss, StoreCorruption
from repro.llm import (
    Completion,
    LLMRequest,
    OracleBackend,
    Prompt,
    RecordingBackend,
    ReplayBackend,
)
from repro.store import (
    ArtifactStore,
    FROZEN_STRICT_KINDS,
    FrozenBackend,
    FrozenLock,
    StoreBinding,
    StoreKey,
    backend_profile,
    decode_artifact,
    encode_artifact,
    extract_key,
    llm_key,
    prompt_digest,
    session_key,
)

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

PROMPT = Prompt(kind="identifier", subject="dm_ctl_fops", text="## Registration\nprobe\n")


def _store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


# ---------------------------------------------------------------- round-trips
class TestRoundTrips:
    def test_llm_completion_roundtrip_and_byte_identity(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("llm", ("profile", "", "digest"))
        value = Completion(text="## IDENTIFIERS\n- ünïcode ✓\n", model="gpt-4")
        digest = store.save(key, value)
        loaded = store.load(key)
        assert loaded == value
        # Equal values serialize to byte-identical blobs, and the blob on
        # disk is exactly that serialization (named by its own digest).
        payload = encode_artifact("llm", value)
        assert encode_artifact("llm", loaded) == payload
        assert store.blob_path(digest).read_bytes() == payload

    def test_extract_text_roundtrip_and_byte_identity(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("extract", ("space-digest", "dm_ctl_ioctl"))
        value = "static long dm_ctl_ioctl(struct file *f)\n{\n\treturn 0;\n}\n"
        store.save(key, value)
        assert store.load(key) == value
        assert encode_artifact("extract", store.load(key)) == encode_artifact("extract", value)

    def test_pickled_session_roundtrip_is_byte_stable_within_run(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("session", ("kernel", "backend", "iterative", "", "dm_ctl_fops"))
        value = {"suite": "resource fd_dm[fd]\n", "queries": 7, "valid": True}
        store.save(key, value)
        loaded = store.load(key)
        assert loaded == value
        # encode(decode(encode(x))) is byte-stable for the pickle codec too.
        payload = encode_artifact("session", value)
        assert encode_artifact("session", decode_artifact("session", payload)) == payload

    def test_resave_of_identical_content_appends_nothing(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("extract", ("space", "name"))
        first = store.save(key, "body")
        second = store.save(key, "body")
        assert first == second
        blobs = [p for p in store.objects_dir.iterdir() if not p.name.startswith(".tmp-")]
        assert len(blobs) == 1
        # Unchanged mapping, unchanged manifest: exactly one line.
        assert store.manifest_path.read_text().count("\n") == 1

    def test_resave_of_new_content_last_wins_and_compact_collects(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("extract", ("space", "name"))
        store.save(key, "old body")
        store.save(key, "new body")
        assert store.load(key) == "new body"
        assert store.manifest_path.read_text().count("\n") == 2
        store.compact()
        assert store.manifest_path.read_text().count("\n") == 1
        assert store.load(key) == "new body"
        blobs = [p for p in store.objects_dir.iterdir() if not p.name.startswith(".tmp-")]
        assert len(blobs) == 1  # the orphaned "old body" blob is gone

    def test_reopened_store_sees_prior_writes(self, tmp_path):
        root = tmp_path / "store"
        key = llm_key(OracleBackend(), LLMRequest(prompt=PROMPT))
        value = Completion(text="reply", model="gpt-4")
        ArtifactStore(root).save(key, value)
        reopened = ArtifactStore(root)
        assert key in reopened
        assert reopened.load(key) == value
        assert reopened.verify() == 1


# -------------------------------------------------------------- key stability
_KEY_SCRIPT = """
import json
from repro.llm import LLMRequest, OracleBackend, Prompt, ReplayBackend
from repro.store import StoreKey, backend_profile, llm_key, prompt_digest

prompt = Prompt(kind="identifier", subject="dm_ctl_fops", text="## Registration\\nprobe\\n")
oracle = OracleBackend()
replay = ReplayBackend(replies={"identifier": ["a", "b"]}, default="x")
replay.script(prompt, "scripted")
print(json.dumps([
    prompt_digest(prompt),
    backend_profile(oracle),
    backend_profile(replay),
    llm_key(oracle, LLMRequest(prompt=prompt)).canonical(),
    llm_key(oracle, LLMRequest(prompt=prompt, route="repair")).canonical(),
    StoreKey("session", ("kdigest", "b-profile", "", "", "batched", "5",
                         "3", "repair", "PromptLibrary", "iterative", "",
                         "dm_ctl_fops")).canonical(),
]))
"""


class TestCanonicalKeys:
    def test_keys_are_identical_across_interpreter_hash_seeds(self):
        """Different ``PYTHONHASHSEED`` runs derive byte-identical keys.

        This is the property that makes the store *persistent* rather than
        per-process: nothing ``hash()``-seeded or ``id()``-derived may leak
        into a canonical key.
        """
        outputs = []
        for seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC_DIR)
            result = subprocess.run(
                [sys.executable, "-c", _KEY_SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(json.loads(result.stdout))
        assert outputs[0] == outputs[1]
        # And both agree with this process (a third, arbitrary seed).
        prompt = PROMPT
        oracle = OracleBackend()
        assert outputs[0][0] == prompt_digest(prompt)
        assert outputs[0][1] == backend_profile(oracle)
        assert outputs[0][3] == llm_key(oracle, LLMRequest(prompt=prompt)).canonical()

    def test_route_and_profile_partition_the_key_space(self):
        oracle = OracleBackend()
        plain = llm_key(oracle, LLMRequest(prompt=PROMPT))
        routed = llm_key(oracle, LLMRequest(prompt=PROMPT, route="repair"))
        other_backend = llm_key(ReplayBackend(default="x"), LLMRequest(prompt=PROMPT))
        canonicals = {plain.canonical(), routed.canonical(), other_backend.canonical()}
        assert len(canonicals) == 3
        assert all(c.startswith("llm:") for c in canonicals)

    def test_differently_scripted_replay_backends_never_share_keys(self):
        a = ReplayBackend(replies={"identifier": ["one"]})
        b = ReplayBackend(replies={"identifier": ["one", "two"]})
        assert backend_profile(a) != backend_profile(b)

    def test_extractor_key_tracks_the_coverage_space(self, extractor):
        key = extract_key(extractor, "dm_ctl_ioctl")
        assert key.kind == "extract"
        assert extractor.store_profile() in key.parts
        assert key.canonical() == extract_key(extractor, "dm_ctl_ioctl").canonical()

    def test_session_key_covers_generator_configuration(self, kernelgpt):
        base = session_key(kernelgpt, flavor="iterative", mode="", handler="dm_ctl_fops")
        other_handler = session_key(kernelgpt, flavor="iterative", mode="", handler="kvm_fops")
        other_flavor = session_key(kernelgpt, flavor="all-in-one", mode="", handler="dm_ctl_fops")
        assert len({base.canonical(), other_handler.canonical(), other_flavor.canonical()}) == 3


# ----------------------------------------------------------------- corruption
class TestCorruption:
    def _saved(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("extract", ("space", "name"))
        digest = store.save(key, "the artifact body")
        return store, key, digest

    def test_bit_flipped_blob_raises_typed_corruption(self, tmp_path):
        store, key, digest = self._saved(tmp_path)
        path = store.blob_path(digest)
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0x40
        path.write_bytes(bytes(payload))
        with pytest.raises(StoreCorruption):
            store.load(key)
        with pytest.raises(StoreCorruption):
            store.verify()

    def test_truncated_blob_raises_typed_corruption(self, tmp_path):
        store, key, digest = self._saved(tmp_path)
        path = store.blob_path(digest)
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(StoreCorruption):
            store.load(key)

    def test_manifest_entry_naming_missing_blob_raises(self, tmp_path):
        store, key, digest = self._saved(tmp_path)
        store.blob_path(digest).unlink()
        with pytest.raises(StoreCorruption) as excinfo:
            store.load(key)
        assert excinfo.value.key == key.canonical()
        with pytest.raises(StoreCorruption):
            store.verify()

    def test_hand_edited_manifest_line_fails_its_check(self, tmp_path):
        store, key, digest = self._saved(tmp_path)
        line = json.loads(store.manifest_path.read_text())
        line["digest"] = "0" * 64  # retarget the entry, keep the stale check
        store.manifest_path.write_text(json.dumps(line) + "\n")
        with pytest.raises(StoreCorruption):
            ArtifactStore(store.root)

    def test_unparseable_manifest_line_raises(self, tmp_path):
        store, _, _ = self._saved(tmp_path)
        with store.manifest_path.open("a") as stream:
            stream.write("{not json at all\n")
        with pytest.raises(StoreCorruption):
            ArtifactStore(store.root)

    def test_wrong_encoding_magic_is_corruption_not_misdecode(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("llm", ("profile", "", "digest"))
        # A pickle-coded payload reached through an llm-kind key must fail
        # loudly rather than being JSON-misdecoded.
        store.put_bytes(key, encode_artifact("session", {"not": "a completion"}))
        with pytest.raises(StoreCorruption):
            store.load(key)

    def test_tampered_lockfile_checksum_raises(self, tmp_path):
        store, key, digest = self._saved(tmp_path)
        lock_path = tmp_path / "frozen.lock"
        FrozenLock.freeze(store).write(lock_path)
        assert len(FrozenLock.load(lock_path)) == 1
        document = json.loads(lock_path.read_text())
        entry = next(iter(document["entries"].values()))
        entry["digest"] = "f" * 64  # repin without fixing the checksum
        lock_path.write_text(json.dumps(document))
        with pytest.raises(StoreCorruption):
            FrozenLock.load(lock_path)

    def test_truncated_lockfile_raises(self, tmp_path):
        store, _, _ = self._saved(tmp_path)
        lock_path = tmp_path / "frozen.lock"
        FrozenLock.freeze(store).write(lock_path)
        lock_path.write_text(lock_path.read_text()[:-40])
        with pytest.raises(StoreCorruption):
            FrozenLock.load(lock_path)

    def test_unsupported_lockfile_version_raises(self, tmp_path):
        store, _, _ = self._saved(tmp_path)
        lock_path = tmp_path / "frozen.lock"
        FrozenLock.freeze(store).write(lock_path)
        document = json.loads(lock_path.read_text())
        document["version"] = 99
        lock_path.write_text(json.dumps(document))
        with pytest.raises(StoreCorruption):
            FrozenLock.load(lock_path)

    def test_missing_lockfile_is_file_not_found_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FrozenLock.load(tmp_path / "absent.lock")


# ---------------------------------------------------------------------- races
class TestConcurrentWriters:
    def test_thread_writers_of_same_content_leave_one_valid_blob(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("extract", ("space", "contested"))
        payload = encode_artifact("extract", "contested body")
        writers = 8
        barrier = threading.Barrier(writers)
        errors = []

        def write():
            try:
                barrier.wait()
                store.put_bytes(key, payload)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=write) for _ in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        blobs = [p for p in store.objects_dir.iterdir() if not p.name.startswith(".tmp-")]
        assert len(blobs) == 1
        assert store.verify() == 1
        assert store.load(key) == "contested body"

    def test_thread_writers_of_distinct_content_still_verify(self, tmp_path):
        store = _store(tmp_path)
        key = StoreKey("extract", ("space", "contested"))
        bodies = [f"body variant {i}" for i in range(6)]
        barrier = threading.Barrier(len(bodies))

        def write(body):
            barrier.wait()
            store.save(key, body)

        threads = [threading.Thread(target=write, args=(body,)) for body in bodies]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Last line wins; whichever write won, the served value is one of
        # the racers' bodies and every referenced blob verifies.
        assert store.load(key) in bodies
        assert store.verify() == 1

    def test_process_writers_of_same_key_leave_one_valid_blob(self, tmp_path):
        root = tmp_path / "store"
        script = (
            "from repro.store import ArtifactStore, StoreKey\n"
            "import sys\n"
            "store = ArtifactStore(sys.argv[1])\n"
            "key = StoreKey('extract', ('space', 'contested'))\n"
            "for _ in range(20):\n"
            "    store.save(key, 'cross-process body')\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(root)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for _ in range(4)
        ]
        for proc in procs:
            _, stderr = proc.communicate(timeout=60)
            assert proc.returncode == 0, stderr.decode()
        store = ArtifactStore(root)
        blobs = [p for p in store.objects_dir.iterdir() if not p.name.startswith(".tmp-")]
        assert len(blobs) == 1
        assert store.verify() == 1
        assert store.load(StoreKey("extract", ("space", "contested"))) == "cross-process body"


# ------------------------------------------------------------------- eviction
class TestEviction:
    def test_evict_by_kind_drops_entries_and_orphan_blobs(self, tmp_path):
        store = _store(tmp_path)
        llm = StoreKey("llm", ("p", "", "d"))
        extract = StoreKey("extract", ("space", "name"))
        session = StoreKey("session", ("a", "b", "c"))
        llm_digest = store.save(llm, Completion(text="reply", model="m"))
        store.save(extract, "body")
        store.save(session, {"suite": "ok"})
        assert store.evict(kinds=("llm",)) == 1
        assert llm not in store
        assert not store.blob_path(llm_digest).exists()
        assert store.load(extract) == "body"
        assert store.load(session) == {"suite": "ok"}
        assert store.verify() == 2

    def test_evict_by_key_is_surgical(self, tmp_path):
        store = _store(tmp_path)
        keep = StoreKey("extract", ("space", "keep"))
        drop = StoreKey("extract", ("space", "drop"))
        store.save(keep, "keep body")
        store.save(drop, "drop body")
        assert store.evict(keys=(drop.canonical(),)) == 1
        assert store.load(keep) == "keep body"
        with pytest.raises(KeyError):
            store.load(drop)
        assert len(store) == 1


# ---------------------------------------------------------------- frozen mode
class TestFrozenMode:
    def test_frozen_hit_serves_pinned_bytes_with_zero_backend_traffic(self, tmp_path):
        store = _store(tmp_path)
        replay = ReplayBackend(default="the reply")
        request = LLMRequest(prompt=PROMPT)
        [recorded] = StoreBinding(store).complete_batch_through(replay, [request])
        assert replay.usage.queries == 1

        lock = FrozenLock.freeze(store)
        frozen = StoreBinding(store, frozen=lock)
        sealed = FrozenBackend(replay)  # any complete_batch call raises
        [served] = frozen.complete_batch_through(sealed, [request])
        assert served == recorded
        assert replay.usage.queries == 1  # hydration metered nothing
        assert frozen.stats()["store:llm"]["hits"] == 1

    def test_frozen_lock_pins_against_later_store_writes(self, tmp_path):
        store = _store(tmp_path)
        replay = ReplayBackend(default="original")
        request = LLMRequest(prompt=PROMPT)
        [original] = StoreBinding(store).complete_batch_through(replay, [request])
        lock = FrozenLock.freeze(store)

        # A later recording run overwrites the live manifest entry...
        store.save(llm_key(replay, request), Completion(text="rewritten", model="replay"))
        assert StoreBinding(store).complete_batch_through(
            FrozenBackend(replay), [request]
        )[0].text == "rewritten"
        # ...but the frozen binding still resolves the pinned digest.
        frozen = StoreBinding(store, frozen=lock)
        [served] = frozen.complete_batch_through(FrozenBackend(replay), [request])
        assert served == original

    def test_frozen_miss_on_strict_kind_is_typed_never_a_silent_call(self, tmp_path):
        store = _store(tmp_path)
        frozen = StoreBinding(store, frozen=FrozenLock.freeze(store))
        replay = ReplayBackend(default="never served")
        unseen = LLMRequest(prompt=Prompt(kind="identifier", subject="new", text="unseen"))
        with pytest.raises(FrozenStoreMiss) as excinfo:
            frozen.complete_batch_through(replay, [unseen])
        assert excinfo.value.kind == "llm"
        assert replay.usage.queries == 0  # the miss never reached the backend
        assert "llm" in FROZEN_STRICT_KINDS and "session" in FROZEN_STRICT_KINDS

    def test_frozen_extract_falls_back_to_local_compute(self, tmp_path):
        class LocalExtractor:
            calls = 0

            def store_profile(self):
                return "extract:stub"

            def extract_code(self, identifier):
                self.calls += 1
                return f"code for {identifier}"

        store = _store(tmp_path)
        frozen = StoreBinding(store, frozen=FrozenLock.freeze(store))
        extractor = LocalExtractor()
        # extract is non-strict: recomputing is pure local work, no traffic.
        assert frozen.extract_through(extractor, "dm_ctl_ioctl") == "code for dm_ctl_ioctl"
        assert extractor.calls == 1
        assert frozen.stats()["store:extract"]["misses"] == 1

    def test_frozen_saves_are_no_ops(self, tmp_path):
        store = _store(tmp_path)
        frozen = StoreBinding(store, frozen=FrozenLock.freeze(store))
        key = StoreKey("extract", ("space", "name"))
        frozen.save(key, "should not land")
        assert key not in store
        assert len(store) == 0

    def test_frozen_backend_refuses_every_batch(self):
        sealed = FrozenBackend(OracleBackend())
        assert sealed.store_profile() == OracleBackend().store_profile()
        with pytest.raises(FrozenStoreMiss):
            sealed.complete_batch([LLMRequest(prompt=PROMPT)])


# ------------------------------------------------- warm-start accounting rule
class TestWarmStartAccounting:
    """Store hydration happens above the backend (determinism rule 9).

    A warm start must not advance the backend's :class:`UsageMeter`, any
    :class:`ReplayBackend` occurrence counter, or a recording transcript —
    the stored artifact already embodies that round-trip.
    """

    def test_warm_engine_does_not_advance_replay_occurrence_counters(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        replay = ReplayBackend()
        replay.script(PROMPT, "first occurrence", "second occurrence")

        cold = ExecutionEngine(jobs=1, store=StoreBinding(store))
        assert cold.cached_query(replay, PROMPT).text == "first occurrence"
        assert replay.usage.queries == 1

        # A fresh engine on the same store: the memo is cold, the store is
        # warm.  The pinned occurrence-0 reply is served; the sequence does
        # NOT advance to "second occurrence" and usage does not move.
        warm = ExecutionEngine(jobs=1, store=StoreBinding(store))
        assert warm.cached_query(replay, PROMPT).text == "first occurrence"
        assert replay.usage.queries == 1
        assert warm.cache_stats()["store:llm"]["hits"] == 1
        # Direct proof the counter never advanced: the next *live* ask
        # (store bypassed) serves occurrence 1, not occurrence 2.
        assert replay.complete(PROMPT).text == "second occurrence"

    def test_warm_engine_records_no_new_exchanges(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        recording = RecordingBackend(ReplayBackend(default="canned"))

        cold = ExecutionEngine(jobs=1, store=StoreBinding(store))
        cold.cached_query(recording, PROMPT)
        assert len(recording.exchanges) == 1

        warm = ExecutionEngine(jobs=1, store=StoreBinding(store))
        assert warm.cached_query(recording, PROMPT).text == "canned"
        assert len(recording.exchanges) == 1  # hydration is not an exchange

    def test_recording_wrapper_and_bare_backend_share_the_key_space(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        inner = ReplayBackend(default="canned")
        recording = RecordingBackend(inner)
        assert backend_profile(recording) == backend_profile(inner)
        StoreBinding(store).complete_batch_through(recording, [LLMRequest(prompt=PROMPT)])
        # Artifacts stored through the wrapper are hits for the bare backend.
        binding = StoreBinding(store)
        [served] = binding.complete_batch_through(inner, [LLMRequest(prompt=PROMPT)])
        assert served.text == "canned"
        assert binding.stats()["store:llm"]["hits"] == 1

    def test_engine_cache_stats_carries_store_rows(self, tmp_path):
        engine = ExecutionEngine(jobs=1, store=StoreBinding(ArtifactStore(tmp_path / "s")))
        stats = engine.cache_stats()
        for row in ("store:llm", "store:extract", "store:session"):
            assert stats[row] == {
                "name": row, "hits": 0, "misses": 0, "errors": 0, "hit_rate": 0.0,
            }


# ----------------------------------------------------------- binding plumbing
class TestStoreBinding:
    def test_batch_misses_reach_backend_as_one_call(self, tmp_path):
        calls = []

        class CountingBackend(ReplayBackend):
            def complete_batch(self, requests):
                calls.append(len(list(requests)))
                return super().complete_batch(requests)

        store = ArtifactStore(tmp_path / "store")
        backend = CountingBackend(default="canned")
        binding = StoreBinding(store)
        requests = [
            LLMRequest(prompt=Prompt(kind="identifier", subject=f"h{i}", text=f"probe-{i}"))
            for i in range(4)
        ]
        binding.complete_batch_through(backend, requests)
        assert calls == [4]  # batch granularity survives hydration
        # Warm pass: two hits, two fresh prompts → one two-element batch.
        more = requests[:2] + [
            LLMRequest(prompt=Prompt(kind="identifier", subject=f"h{i}", text=f"probe-{i}"))
            for i in (8, 9)
        ]
        StoreBinding(store).complete_batch_through(backend, more)
        assert calls == [4, 2]

    def test_stats_are_binding_local_while_artifacts_are_shared(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = StoreBinding(store)
        first.complete_batch_through(ReplayBackend(default="x"), [LLMRequest(prompt=PROMPT)])
        second = StoreBinding(store)
        second.complete_batch_through(ReplayBackend(default="x"), [LLMRequest(prompt=PROMPT)])
        assert first.stats()["store:llm"] == {
            "name": "store:llm", "hits": 0, "misses": 1, "errors": 0, "hit_rate": 0.0,
        }
        assert second.stats()["store:llm"]["hits"] == 1
        assert second.stats()["store:llm"]["misses"] == 0

    def test_store_handle_pickles_by_path(self, tmp_path):
        import pickle

        store = ArtifactStore(tmp_path / "store")
        key = StoreKey("extract", ("space", "name"))
        store.save(key, "body")
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.load(key) == "body"


# ---------------------------------------------------------------- lock bounds
class TestLockTimeout:
    """The manifest flock wait is bounded: a wedged lock holder surfaces as
    a typed :class:`StoreLockTimeout` instead of a silent hang."""

    HOLDER = (
        "import fcntl, sys, time\n"
        "handle = open(sys.argv[1], 'w')\n"
        "fcntl.flock(handle, fcntl.LOCK_EX)\n"
        "print('HELD', flush=True)\n"
        "time.sleep(30)\n"
    )

    def _hold_lock(self, lock_path):
        proc = subprocess.Popen(
            [sys.executable, "-c", self.HOLDER, str(lock_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        assert proc.stdout.readline().strip() == "HELD"
        return proc

    def test_held_lock_raises_typed_timeout_with_context(self, tmp_path):
        pytest.importorskip("fcntl")
        from repro.errors import StoreLockTimeout

        root = tmp_path / "store"
        ArtifactStore(root)  # lay out the directory and .lock file
        proc = self._hold_lock(root / ".lock")
        try:
            with pytest.raises(StoreLockTimeout) as excinfo:
                # __init__ refreshes the manifest under the lock, so the
                # bounded wait trips right at construction.
                ArtifactStore(root, lock_timeout=0.2)
            assert excinfo.value.path == str(root / ".lock")
            assert excinfo.value.timeout == 0.2
            assert "0.2" in str(excinfo.value)
        finally:
            proc.kill()
            proc.wait()

    def test_save_raises_after_holder_wedges_an_open_store(self, tmp_path):
        pytest.importorskip("fcntl")
        from repro.errors import StoreLockTimeout
        from repro.store import StoreKey

        root = tmp_path / "store"
        store = ArtifactStore(root, lock_timeout=0.2)
        proc = self._hold_lock(root / ".lock")
        try:
            with pytest.raises(StoreLockTimeout):
                store.save(StoreKey("extract", ("space", "name")), "body")
        finally:
            proc.kill()
            proc.wait()
        # The holder is gone: the same handle recovers without rebuilding.
        store.save(StoreKey("extract", ("space", "name")), "body")
        assert store.load(StoreKey("extract", ("space", "name"))) == "body"

    def test_nonpositive_timeout_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path / "store", lock_timeout=0.0)

    def test_pickle_preserves_the_timeout(self, tmp_path):
        import pickle

        store = ArtifactStore(tmp_path / "store", lock_timeout=1.5)
        assert pickle.loads(pickle.dumps(store)).lock_timeout == 1.5
