"""The serving layer: batch coalescing, tenant budgets, job service.

Covers the coalescer edge cases the serving layer's correctness rests on —
empty flush, window timeout with a single request, cross-tenant dedupe
without budget leakage, mid-batch budget exhaustion raising at the right
request, deterministic drain ordering — plus the service-level contracts:
admission control, result streaming, and the rule-8 guarantee that a
single-job service run is byte-identical to the CLI path.
"""

import threading

import pytest

from repro.engine import ExecutionEngine, GlobalWorkerBudget
from repro.errors import ServiceSaturated, TenantBudgetExceeded
from repro.llm import BatchCoalescer, CoalescingBackend, Completion, LLMBackend, Prompt
from repro.service import Job, JobService
from repro.experiments.config import quick


class EchoBackend(LLMBackend):
    """Deterministic test backend recording every batch it serves."""

    def __init__(self):
        super().__init__(model="echo")
        self.batches: list[list[str]] = []

    def complete_batch(self, requests):
        from repro.llm import LLMRequest

        normalized = [LLMRequest.of(item) for item in requests]
        self.batches.append([request.prompt.text for request in normalized])
        return super()._serve_batch(normalized)

    def complete(self, prompt):
        return Completion(text=f"reply:{prompt.text}", model=self.model)


def prompt(text: str, kind: str = "usage") -> Prompt:
    return Prompt(kind=kind, subject="svc", text=text)


# ------------------------------------------------------------- coalescer core
class TestCoalescer:
    def test_empty_flush_is_a_noop(self):
        backend = EchoBackend()
        coalescer = BatchCoalescer(backend, drain=True)
        assert coalescer.flush() == 0
        assert backend.batches == []
        assert coalescer.stats()["flushes"] == 0

    def test_empty_submission_returns_empty(self):
        coalescer = BatchCoalescer(EchoBackend(), drain=True)
        assert coalescer.submit([]) == []

    def test_drain_mode_flushes_inline_in_admission_order(self):
        backend = EchoBackend()
        coalescer = BatchCoalescer(backend, drain=True)
        first = coalescer.submit([prompt("a"), prompt("b")])
        second = coalescer.submit([prompt("c")])
        assert [completion.text for completion in first] == ["reply:a", "reply:b"]
        assert [completion.text for completion in second] == ["reply:c"]
        # Drain: each submission is its own backend batch, in order.
        assert backend.batches == [["a", "b"], ["c"]]

    def test_window_timeout_flushes_a_single_request(self):
        backend = EchoBackend()
        coalescer = BatchCoalescer(backend, window=0.01)
        try:
            result = coalescer.submit([prompt("lonely")])
            assert [completion.text for completion in result] == ["reply:lonely"]
            assert backend.batches == [["lonely"]]
        finally:
            coalescer.close()

    def test_hold_merges_concurrent_submissions_in_admission_order(self):
        backend = EchoBackend()
        coalescer = BatchCoalescer(backend, drain=True)
        outputs: dict[str, list[str]] = {}

        def submit(text: str) -> None:
            outputs[text] = [c.text for c in coalescer.submit([prompt(text)])]

        threads = []
        with coalescer.hold():
            for index, text in enumerate(("one", "two", "three")):
                thread = threading.Thread(target=submit, args=(text,))
                thread.start()
                threads.append(thread)
                # Admission order is only deterministic if we let each
                # submission land before starting the next.
                assert coalescer.wait_for_pending(index + 1)
        for thread in threads:
            thread.join()
        assert backend.batches == [["one", "two", "three"]]
        assert outputs["two"] == ["reply:two"]
        stats = coalescer.stats()
        assert stats["merged_flushes"] == 1
        assert stats["max_merged_batch"] == 3

    def test_max_batch_triggers_early_flush(self):
        backend = EchoBackend()
        coalescer = BatchCoalescer(backend, window=30.0, max_batch=2)
        try:
            outputs = []
            threads = [
                threading.Thread(
                    target=lambda t: outputs.append(coalescer.submit([prompt(t)])),
                    args=(text,),
                )
                for text in ("x", "y")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                # Well under the 30s window: only the size trigger can
                # have flushed.
                thread.join(timeout=5.0)
                assert not thread.is_alive()
            assert len(backend.batches) == 1
            assert sorted(backend.batches[0]) == ["x", "y"]
        finally:
            coalescer.close()

    def test_backend_failure_reaches_every_waiter(self):
        class FailingBackend(EchoBackend):
            def complete_batch(self, requests):
                raise RuntimeError("backend down")

        coalescer = BatchCoalescer(FailingBackend(), drain=True)
        with pytest.raises(RuntimeError, match="backend down"):
            coalescer.submit([prompt("doomed")])
        assert coalescer.stats()["errors"] == 1

    def test_closed_coalescer_refuses_submissions(self):
        coalescer = BatchCoalescer(EchoBackend(), window=0.01)
        coalescer.close()
        with pytest.raises(ServiceSaturated):
            coalescer.submit([prompt("late")])


# ---------------------------------------------------------------- tenant rules
class TestTenantBudgets:
    def test_same_prompt_from_two_tenants_dedupes_without_leaking_accounting(self):
        backend = EchoBackend()
        coalescer = BatchCoalescer(backend, drain=True)
        coalescer.set_tenant_budget("alpha", 1)
        coalescer.set_tenant_budget("beta", 1)
        replies: dict[str, list[str]] = {}

        def submit(tenant: str) -> None:
            replies[tenant] = [
                c.text
                for c in coalescer.submit([prompt("shared")], tenant=tenant, client=tenant)
            ]

        threads = []
        with coalescer.hold():
            for index, tenant in enumerate(("alpha", "beta")):
                thread = threading.Thread(target=submit, args=(tenant,))
                thread.start()
                threads.append(thread)
                assert coalescer.wait_for_pending(index + 1)
        for thread in threads:
            thread.join()
        # One merged batch; the member-level dedupe computes "shared" once...
        assert backend.batches == [["shared", "shared"]]
        assert backend.usage.queries == 1
        assert replies["alpha"] == replies["beta"] == ["reply:shared"]
        # ...but each tenant is charged for the distinct query *it* submitted:
        # the dedupe saving belongs to the service, not to either budget.
        usage = coalescer.tenant_usage()
        assert usage["alpha"]["used"] == 1
        assert usage["beta"]["used"] == 1
        # The free ride is credited to the second-admitted client's stats.
        total_saved = sum(
            coalescer.client_stats(tenant)["queries_saved_by_coalescing"]
            for tenant in ("alpha", "beta")
        )
        assert total_saved == 1

    def test_exhaustion_mid_batch_serves_prefix_and_names_the_request(self):
        backend = EchoBackend()
        coalescer = BatchCoalescer(backend, drain=True)
        coalescer.set_tenant_budget("tight", 2)
        with pytest.raises(TenantBudgetExceeded) as excinfo:
            coalescer.submit(
                [prompt("p0"), prompt("p1"), prompt("p2")], tenant="tight"
            )
        error = excinfo.value
        assert error.tenant == "tight"
        assert error.limit == 2
        assert error.requested == 3
        # The first unfundable request is position 2; the funded prefix was
        # still served (and charged) before the raise.
        assert error.request_index == 2
        assert backend.batches == [["p0", "p1"]]
        assert coalescer.tenant_usage()["tight"]["used"] == 2
        # A fully-exhausted tenant fails at its very first request.
        with pytest.raises(TenantBudgetExceeded) as excinfo:
            coalescer.submit([prompt("p3")], tenant="tight")
        assert excinfo.value.request_index == 0
        assert backend.batches == [["p0", "p1"]]

    def test_duplicates_within_a_batch_are_charged_once(self):
        coalescer = BatchCoalescer(EchoBackend(), drain=True)
        coalescer.set_tenant_budget("dup", 1)
        result = coalescer.submit([prompt("same"), prompt("same")], tenant="dup")
        assert [c.text for c in result] == ["reply:same", "reply:same"]
        assert coalescer.tenant_usage()["dup"]["used"] == 1


# ------------------------------------------------------------ pickling + admit
class TestPicklingAndAdmission:
    def test_pickled_coalescing_backend_proxies_its_inner_copy(self):
        import pickle

        inner = EchoBackend()
        coalescer = BatchCoalescer(inner, drain=True)
        backend = CoalescingBackend(coalescer, tenant="t", client="c")
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.coalescer is None
        replies = clone.complete_batch([prompt("worker-side")])
        assert [c.text for c in replies] == ["reply:worker-side"]
        # Served by the clone's own inner copy, not the parent's coalescer.
        assert inner.batches == []

    def test_worker_budget_admit_refuses_when_saturated(self):
        budget = GlobalWorkerBudget(limit=2)
        granted = budget.admit(2)
        assert granted == 2
        with pytest.raises(ServiceSaturated) as excinfo:
            budget.admit(1)
        assert excinfo.value.limit == 2
        assert excinfo.value.pending == 2
        budget.release(granted)
        # Partial grants are allowed when ``required`` relaxes the ask.
        assert budget.admit(8, required=1) == 2


# ---------------------------------------------------------------- job service
@pytest.fixture(scope="module")
def service_kernel():
    from repro.kernel import build_default_kernel

    return build_default_kernel("small")


HANDLERS = ("dm_ctl_fops", "kvm_fops")


class TestJobService:
    def test_single_job_matches_the_cli_path_bytes(self, service_kernel):
        from repro.experiments.context import EvaluationContext

        ctx = EvaluationContext(quick(), service_kernel)
        direct = ctx.kernelgpt.generate_for_handler("dm_ctl_fops")
        expected = (
            f"== dm_ctl_fops (valid={direct.valid}, "
            f"syscalls={direct.syscall_count}, repaired={direct.repaired})\n"
            f"{direct.suite_text()}"
        )
        texts = {}
        for coalesce in (False, True):
            with JobService(
                quick(), workers=2, kernel=service_kernel, coalesce=coalesce
            ) as service:
                handle = service.submit(Job(kind="generation", handlers=("dm_ctl_fops",)))
                result = handle.wait(timeout=120)
            assert result.ok, result.error
            texts[coalesce] = result.text
        # Rule 8: single-job service output is byte-identical to the CLI
        # path, with coalescing on or off.
        assert texts[True] == texts[False] == expected

    def test_concurrent_identical_jobs_coalesce_and_stay_identical(self, service_kernel):
        results = {}
        calls = {}
        for coalesce in (False, True):
            from repro.llm import OracleBackend

            class Counting(LLMBackend):
                def __init__(self):
                    super().__init__(model="count")
                    self.inner = OracleBackend()
                    self.calls = 0

                def complete_batch(self, requests):
                    self.calls += 1
                    return self.inner.complete_batch(requests)

                def complete(self, prompt):
                    raise NotImplementedError

            backend = Counting()
            with JobService(
                quick(),
                workers=3,
                kernel=service_kernel,
                backend=backend,
                coalesce=coalesce,
                window=0.02,
            ) as service:
                handles = [
                    service.submit(
                        Job(kind="generation", tenant=f"tenant-{i}", handlers=HANDLERS)
                    )
                    for i in range(3)
                ]
                outcomes = [handle.wait(timeout=180) for handle in handles]
                stats = service.stats()["coalescer"]
            assert all(outcome.ok for outcome in outcomes), [o.error for o in outcomes]
            results[coalesce] = [outcome.text for outcome in outcomes]
            calls[coalesce] = backend.calls
            if coalesce:
                assert stats["merged_flushes"] >= 1
                assert stats["queries_saved_by_coalescing"] > 0
                saved = sum(
                    o.coalescing["queries_saved_by_coalescing"] for o in outcomes
                )
                assert saved > 0
        # Coalescing reduces round trips and never changes bytes.
        assert calls[True] < calls[False]
        assert results[True] == results[False]
        assert len(set(results[True])) == 1  # identical jobs, identical text

    def test_events_stream_in_handler_order(self, service_kernel):
        with JobService(quick(), workers=1, kernel=service_kernel) as service:
            handle = service.submit(Job(kind="generation", handlers=HANDLERS))
            streamed = [event.detail.split()[0] for event in handle.events()]
            result = handle.wait(timeout=120)
        assert result.ok
        assert streamed == list(HANDLERS)
        assert [e.stage for e in result.events] == ["handler", "handler"]

    def test_max_pending_saturates(self, service_kernel):
        service = JobService(
            quick(), workers=1, max_pending=1, kernel=service_kernel
        )
        try:
            service.submit(Job(kind="generation", handlers=HANDLERS))
            with pytest.raises(ServiceSaturated) as excinfo:
                service.submit(Job(kind="generation", handlers=HANDLERS))
            assert excinfo.value.limit == 1
        finally:
            service.close()
        with pytest.raises(ServiceSaturated):
            service.submit(Job(kind="generation", handlers=HANDLERS))

    def test_tenant_budget_fails_the_job_with_a_typed_error(self, service_kernel):
        with JobService(
            quick(),
            workers=1,
            kernel=service_kernel,
            tenant_budgets={"capped": 3},
        ) as service:
            handle = service.submit(
                Job(kind="generation", tenant="capped", handlers=("dm_ctl_fops",))
            )
            result = handle.wait(timeout=120)
        assert not result.ok
        assert isinstance(result.error, TenantBudgetExceeded)
        assert result.error.tenant == "capped"

    def test_fuzz_job_smoke(self, service_kernel):
        with JobService(quick(), workers=1, kernel=service_kernel) as service:
            handle = service.submit(Job(kind="fuzz", suite="syzkaller", budget_programs=50))
            result = handle.wait(timeout=120)
        assert result.ok, result.error
        assert "programs=50" in result.text
        assert [e.stage for e in result.events] == ["suite", "campaign"]

    def test_repair_job_reports_repair_stats(self, service_kernel):
        with JobService(quick(), workers=1, kernel=service_kernel) as service:
            handle = service.submit(Job(kind="repair", handlers=("dm_ctl_fops",)))
            result = handle.wait(timeout=120)
        assert result.ok, result.error
        assert "mode=transactional" in result.text
