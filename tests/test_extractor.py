"""Tests for the C-subset parser and the kernel extractor."""

import pytest

from repro.errors import ExtractionError
from repro.extractor import parse_translation_unit


SAMPLE = '''
#define FOO_CMD 0x42
#define FOO_NAME "foo"

struct foo_args {
\t__u32 count;\t/* number of entries in data */
\t__u64 data[];
};

static int foo_do(struct file *file, void __user *argp)
{
\tstruct foo_args params;
\tif (copy_from_user(&params, argp, sizeof(struct foo_args)))
\t\treturn -EFAULT;
\treturn 0;
}

static long foo_ioctl(struct file *file, unsigned int cmd, unsigned long arg)
{
\tvoid __user *argp = (void __user *)arg;

\tswitch (cmd) {
\tcase FOO_CMD:
\t\treturn foo_do(file, argp);
\tdefault:
\t\treturn -ENOTTY;
\t}
}

static const struct file_operations foo_fops = {
\t.owner = THIS_MODULE,
\t.unlocked_ioctl = foo_ioctl,
};

static struct miscdevice _foo_misc = {
\t.name = "foo",
\t.fops = &foo_fops,
};
'''


def test_parse_translation_unit_indexes_everything():
    unit = parse_translation_unit("drivers/foo.c", SAMPLE)
    assert unit.macros["FOO_CMD"].int_value == 0x42
    assert [f.name for f in unit.structs["foo_args"].fields] == ["count", "data"]
    assert unit.structs["foo_args"].fields[1].is_flexible_array
    assert "switch (cmd)" in unit.functions["foo_ioctl"].body
    assert unit.initializers["foo_fops"].field_value("unlocked_ioctl") == "foo_ioctl"
    assert "foo_do" in unit.functions["foo_ioctl"].calls()


def test_extractor_discovers_handlers(extractor):
    stats = extractor.stats()
    assert stats["driver_handlers"] >= 35
    assert stats["socket_handlers"] == 10
    dm = extractor.handler("dm_ctl_fops")
    assert dm.kind == "driver"
    assert dm.ioctl_fn == "dm_ctl_ioctl"
    assert any("miscdevice" in snippet for snippet in dm.usage_snippets)


def test_extract_code_and_kinds(extractor):
    assert "dm_ctl_ioctl" in extractor.extract_code("dm_ctl_ioctl")
    assert extractor.definition_kind("dm_ctl_ioctl") == "function"
    assert extractor.definition_kind("dm_ctl_fops") == "initializer"
    with pytest.raises(ExtractionError):
        extractor.extract_code("no_such_identifier_at_all")


def test_extractor_constants_match_kernel(small_kernel, extractor):
    table = extractor.constants()
    dm = small_kernel.driver("device-mapper")
    for op in dm.ops:
        assert table.resolve(op.macro) == op.value


def test_socket_handler_discovery(extractor):
    rds = extractor.handler("rds_proto_ops")
    members = dict(rds.syscall_fns)
    assert "setsockopt" in members and "sendto" in members
