"""Differential campaigns: config model validation, digest stability,
plan shape, scheduler determinism and warm-store reuse.

The determinism anchor (DESIGN.md rule 12): a diff campaign's rendered
reports and rule-10 event view are identical across jobs/executor choices,
and a warm store serves the whole config-invariant prefix as
``task_reused`` while only the config-dependent cone re-executes when the
cell set changes.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.diffcampaign import DIFF_ASPECTS, build_diff_plan, cell_fuzz_id, cell_report_id, diff_task_id
from repro.engine import ExecutionEngine
from repro.errors import CampaignPlanError, ConfigError
from repro.experiments.config import quick
from repro.kconfig import (
    CONFIG_PRESETS,
    ConfigAxis,
    ConfigPreset,
    config_preset,
    kernel_config_digest,
)
from repro.orchestrator.events import EventLog, deterministic_view
from repro.orchestrator.scheduler import CampaignScheduler
from repro.store import ArtifactStore

CELLS = ["fs-ioctl", "netlink"]
BUDGET = 40


# ----------------------------------------------------------- config model
def test_axis_validation():
    with pytest.raises(ConfigError):
        ConfigAxis(name="Bad Name", options=("CONFIG_X",))
    with pytest.raises(ConfigError):
        ConfigAxis(name="empty", options=())
    with pytest.raises(ConfigError):
        ConfigAxis(name="pattern", options=("not-a-config",))
    with pytest.raises(ConfigError):
        ConfigAxis(name="dupes", options=("CONFIG_X", "CONFIG_X"))


def test_preset_validation():
    axis = ConfigAxis(name="one", options=("CONFIG_X",))
    with pytest.raises(ConfigError):
        ConfigPreset(name="both", axes=(axis,), enable_all=True)
    with pytest.raises(ConfigError):
        ConfigPreset(name="neither")
    with pytest.raises(ConfigError):
        ConfigPreset(name="dupes", axes=(axis, axis))
    with pytest.raises(ConfigError):
        ConfigPreset(name="Bad Name", axes=(axis,))


def test_unknown_preset_is_a_typed_error():
    with pytest.raises(ConfigError) as excinfo:
        config_preset("no-such-preset")
    assert "baseline" in str(excinfo.value)


def test_shipped_presets_have_distinct_digests():
    digests = {preset.digest() for preset in CONFIG_PRESETS.values()}
    assert len(digests) == len(CONFIG_PRESETS)
    for digest in digests:
        assert len(digest) == 64 and set(digest) <= set("0123456789abcdef")


def test_digest_covers_every_flag():
    base = CONFIG_PRESETS["netlink"]
    flipped = ConfigPreset(
        name=base.name, axes=base.axes, include_guards=False
    )
    assert flipped.digest() != base.digest()
    assert kernel_config_digest(base.kernel_config()) != kernel_config_digest(
        flipped.kernel_config(), flipped.kernel_config()
    )


def test_config_digests_stable_across_hash_seeds():
    """Digests are pure content: two interpreters with different
    PYTHONHASHSEED values print identical digests for every preset."""
    script = (
        "from repro.kconfig import CONFIG_PRESETS, kernel_config_digest\n"
        "from repro.kernel import build_default_kernel\n"
        "for name in sorted(CONFIG_PRESETS):\n"
        "    print(name, CONFIG_PRESETS[name].digest())\n"
        "kernel = build_default_kernel('small')\n"
        "print('kernel', kernel_config_digest(kernel.scan_config(), kernel.fuzz_config()))\n"
    )
    src = str(Path(__file__).resolve().parent.parent / "src")
    outputs = []
    for seed in ("0", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]
    assert len(outputs[0].splitlines()) == len(CONFIG_PRESETS) + 1


# ------------------------------------------------------------- plan shape
def test_diff_plan_requires_two_distinct_cells():
    config = quick()
    with pytest.raises(CampaignPlanError):
        build_diff_plan(config, [CONFIG_PRESETS["netlink"]])
    with pytest.raises(CampaignPlanError):
        build_diff_plan(config, [CONFIG_PRESETS["netlink"], CONFIG_PRESETS["netlink"]])


def test_diff_plan_layout():
    presets = [CONFIG_PRESETS[name] for name in CELLS]
    plan = build_diff_plan(quick(), presets, fuzz_budget=BUDGET)
    assert "generate" in plan and "validate" in plan
    report_ids = []
    for name in sorted(CELLS):
        fuzz = plan.task(cell_fuzz_id(name))
        assert fuzz.depends_on == ("validate",)
        assert fuzz.params_dict()["config_digest"] == CONFIG_PRESETS[name].digest()
        report = plan.task(cell_report_id(name))
        assert report.depends_on == (cell_fuzz_id(name),)
        report_ids.append(cell_report_id(name))
    for aspect in DIFF_ASPECTS:
        diff = plan.task(diff_task_id(aspect))
        assert diff.depends_on == tuple(report_ids)
    # Shared prefix is byte-identical to the standard campaign plan's.
    from repro.orchestrator.plan import build_campaign_plan

    campaign = build_campaign_plan(quick(), experiments=["table2"])
    for task_id in ("generate", "validate"):
        assert plan.task(task_id) == campaign.task(task_id)


# ------------------------------------------------- determinism and reuse
def _run(engine=None, store=None):
    presets = [CONFIG_PRESETS[name] for name in CELLS]
    plan = build_diff_plan(quick(), presets, fuzz_budget=BUDGET)
    events = EventLog()
    scheduler = CampaignScheduler(
        plan, engine, preset="quick", store=store, events=events
    )
    result = scheduler.run()
    result.raise_for_status()
    texts = [
        result.output(cell_report_id(name))["text"] for name in sorted(CELLS)
    ] + [result.output(diff_task_id(aspect))["text"] for aspect in DIFF_ASPECTS]
    return result, texts, [deterministic_view(record) for record in events.events]


@pytest.mark.parametrize(
    "jobs,executor", [(1, "serial"), (4, "thread"), (4, "process")]
)
def test_diff_campaign_is_deterministic_across_executors(jobs, executor):
    baseline_result, baseline_texts, baseline_events = _run()
    result, texts, events = _run(ExecutionEngine(jobs=jobs, kind=executor))
    assert texts == baseline_texts
    assert events == baseline_events
    assert {
        task_id: outcome.output_digest
        for task_id, outcome in result.outcomes.items()
    } == {
        task_id: outcome.output_digest
        for task_id, outcome in baseline_result.outcomes.items()
    }


def test_diff_campaign_warm_store_reuses_everything(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    cold, cold_texts, _ = _run(store=store)
    assert cold.reused == 0
    warm, warm_texts, _ = _run(store=store)
    assert warm_texts == cold_texts
    assert warm.executed == 0
    assert warm.reused == len(cold.outcomes)


def test_new_cell_reexecutes_only_its_cone(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    _run(store=store)
    presets = [CONFIG_PRESETS[name] for name in CELLS + ["usb-hotplug"]]
    plan = build_diff_plan(quick(), presets, fuzz_budget=BUDGET)
    result = CampaignScheduler(plan, preset="quick", store=store).run()
    result.raise_for_status()
    reused = {t for t, o in result.outcomes.items() if o.reused}
    executed = {t for t, o in result.outcomes.items() if not o.reused}
    # Config-invariant prefix and unchanged cells come from the store...
    assert {"generate", "validate"} <= reused
    for name in CELLS:
        assert cell_fuzz_id(name) in reused and cell_report_id(name) in reused
    # ...and only the new cell plus the terminal diffs re-execute.
    assert executed == {
        cell_fuzz_id("usb-hotplug"),
        cell_report_id("usb-hotplug"),
    } | {diff_task_id(aspect) for aspect in DIFF_ASPECTS}


def test_cell_outputs_pin_their_config(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    result, _, _ = _run(store=store)
    for name in CELLS:
        fuzz = result.output(cell_fuzz_id(name))
        assert fuzz["config_digest"] == CONFIG_PRESETS[name].digest()
        assert fuzz["space_digest"] != ""
        assert fuzz["extras"] == []          # covered labels stay in-space
        assert fuzz["coverage"] == sorted(fuzz["coverage"])
    left = result.output(cell_fuzz_id(CELLS[0]))
    right = result.output(cell_fuzz_id(CELLS[1]))
    assert left["space_digest"] != right["space_digest"]
