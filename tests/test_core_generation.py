"""End-to-end tests for the KernelGPT generation pipeline."""

from repro.core import KernelGPT, select_target_handlers
from repro.llm import OracleBackend, PromptLibrary
from repro.syzlang import validate_suite


def test_dm_spec_matches_paper_expectations(small_kernel, dm_result):
    """The Figure 2d properties: right device node, right macros, typed arg."""
    assert dm_result.valid
    assert dm_result.device_path == "/dev/mapper/control"
    names = set(dm_result.suite.syscall_names())
    assert "ioctl$DM_LIST_DEVICES" in names
    assert "ioctl$DM_DEV_CREATE" in names
    listdev = dm_result.suite.get_syscall("ioctl$DM_LIST_DEVICES")
    assert "DM_LIST_DEVICES" in listdev.params[1].type.render()
    report = validate_suite(dm_result.suite, small_kernel.constants)
    assert report.is_valid


def test_dm_spec_covers_most_ground_truth_ops(small_kernel, dm_result):
    truth_macros = {op.macro for op in small_kernel.driver("device-mapper").ops}
    described = {s.variant for s in dm_result.suite if s.name == "ioctl"}
    assert len(truth_macros & described) >= len(truth_macros) - 2


def test_kvm_dependency_discovery(kvm_result):
    """Secondary VM/VCPU handlers must be discovered through dependencies."""
    assert kvm_result.valid
    resources = set(kvm_result.suite.resources)
    assert "fd_kvm_vm" in resources and "fd_kvm_vcpu" in resources
    producers = [s for s in kvm_result.suite if s.produced_resource() == "fd_kvm_vm"]
    assert producers and producers[0].name == "ioctl"
    assert kvm_result.syscall_count > 40


def test_socket_generation(rds_result):
    assert rds_result.valid
    assert rds_result.socket_family == "AF_RDS"
    names = rds_result.suite.syscall_names()
    assert any(name.startswith("setsockopt$") for name in names)
    assert any(name.startswith("sendto$") for name in names)


def test_generated_specs_use_readable_names(dm_result):
    text = dm_result.suite_text()
    assert "fd_dm_ctl" in text
    assert "field_0" not in text


def test_repair_loop_reports_rounds(kernelgpt):
    result = kernelgpt.generate_for_handler("cec_devnode_fops")
    assert result.valid
    if not result.initially_valid:
        assert result.repaired and result.repair_rounds_used >= 1


def test_repair_disabled_keeps_invalid(small_kernel, extractor):
    generator = KernelGPT(small_kernel, OracleBackend(), extractor=extractor, repair=False)
    run = generator.generate_for_handlers([info.handler_name for info in extractor.handlers("driver")[:12]])
    # Without repair at least one handler should remain invalid (the error
    # model injects repairable mistakes at a calibrated rate).
    assert any(not result.valid for result in run.results.values()) or all(
        result.initially_valid for result in run.results.values()
    )


def test_all_in_one_is_worse_than_iterative(kernelgpt, kvm_result):
    all_in_one = kernelgpt.generate_all_in_one("kvm_fops")
    assert all_in_one.syscall_count < kvm_result.syscall_count


def test_select_target_handlers(small_kernel, syzkaller_corpus):
    selection = select_target_handlers(small_kernel, syzkaller_corpus)
    assert "dm_ctl_fops" in selection.driver_handlers
    assert all(handler not in selection.driver_handlers
               for handler in ("fuse_fops",))  # fully described driver


def test_fewshot_free_prompts_still_work(small_kernel, extractor):
    generator = KernelGPT(small_kernel, OracleBackend(), extractor=extractor,
                          prompts=PromptLibrary(fewshot=False))
    result = generator.generate_for_handler("udmabuf_fops")
    assert result.syscall_count >= 3
