"""Tests for prompts, reply parsing and the oracle/degraded backends."""

from repro.llm import (
    DegradedBackend, GPT35_PROFILE, OracleBackend, Prompt, PromptLibrary,
    RecordingBackend, ReplayBackend, parse_reply, slice_case_block,
)
from repro.llm.analysis import (
    analyze_struct_text, find_delegation_target, find_switch_cases,
    infer_arg_struct, infer_device_path, uses_ioc_nr_rewrite,
)
import pytest

from repro.errors import LLMProtocolError


def test_parse_reply_sections():
    reply = parse_reply('''
## DEVICE
- PATH: /dev/mapper/control
## IDENTIFIERS
- IDENT: DM_VERSION | HANDLER: dm_version | SYSCALL: ioctl
## TYPEDEF
dm_ioctl {
\tversion array[int32, 3]
}
## UNKNOWN
- FUNC: lookup_ioctl | USAGE: fn = lookup_ioctl(cmd);
''')
    assert reply.device_path == "/dev/mapper/control"
    assert reply.identifiers[0]["IDENT"] == "DM_VERSION"
    assert reply.typedefs[0][0] == "dm_ioctl"
    assert reply.unknowns[0].name == "lookup_ioctl"


def test_infer_device_path_prefers_nodename():
    text = 'static struct miscdevice m = {\n\t.name = "device-mapper",\n\t.nodename = "mapper/control",\n};'
    finding = infer_device_path(text)
    assert finding.path == "/dev/mapper/control"
    assert finding.source == "nodename"


def test_infer_device_path_device_create_template():
    text = 'device_create(cls, NULL, devt, NULL, "loop%d", minor);'
    assert infer_device_path(text).path == "/dev/loop#"


def test_switch_and_rewrite_detection():
    code = "unsigned int nr = _IOC_NR(cmd);\nswitch (nr) {\ncase DM_VERSION_CMD:\n\treturn do_version(file, argp);\n}"
    assert uses_ioc_nr_rewrite(code)
    assert find_switch_cases(code) == [("DM_VERSION_CMD", "do_version")]


def test_delegation_detection():
    code = "\treturn ctl_ioctl(file, command, u);\n"
    assert find_delegation_target(code) == "ctl_ioctl"


def test_infer_arg_struct_directions():
    body_in = "struct foo params;\nif (copy_from_user(&params, argp, sizeof(struct foo)))\n\treturn -EFAULT;"
    assert infer_arg_struct(body_in) == ("foo", "in")
    body_inout = body_in + "\nif (copy_to_user(argp, &params, sizeof(struct foo)))\n\treturn -EFAULT;"
    assert infer_arg_struct(body_inout) == ("foo", "inout")


def test_analyze_struct_text_recovers_len_and_out():
    text = '''
struct foo_args {
\t__u32 nr_entries;\t/* number of entries that follow */
\t__u32 id;\t/* written by the kernel */
\t__u64 entries[];
};
'''
    fields, missing = analyze_struct_text("foo_args", text)
    assert not missing
    by_name = {f.name: f for f in fields}
    assert by_name["nr_entries"].syz_type.startswith("len[entries")
    assert by_name["id"].out
    assert by_name["entries"].syz_type.startswith("array[")


def test_oracle_identifier_reply_on_real_prompt(extractor):
    prompts = PromptLibrary()
    backend = OracleBackend()
    registration = extractor.handler("snapshot_fops").initializer_text + "\n" + "\n".join(
        extractor.handler("snapshot_fops").usage_snippets
    )
    code = extractor.extract_code("snapshot_ioctl")
    reply = parse_reply(backend.query(prompts.identifier_prompt(
        "snapshot_fops", kind="driver", registration=registration, code=code)).text)
    # The registered handler delegates, so the first step must mark it unknown.
    assert reply.unknowns and reply.unknowns[0].kind == "func"


def test_oracle_usage_accounting():
    backend = OracleBackend()
    backend.query(Prompt(kind="identifier", subject="x", text="## Registration\nnothing\n"))
    assert backend.usage.queries == 1
    assert backend.usage.input_tokens > 0


def test_degraded_profile_is_weaker():
    assert GPT35_PROFILE.miss_op_rate > 0.1
    assert DegradedBackend.gpt35().profile.name == "gpt-3.5"
    assert DegradedBackend.gpt4o().profile.miss_op_rate < 0.1


def test_slice_case_block():
    code = "switch (optname) {\ncase OPT_A:\n\tdo_a();\n\tbreak;\ncase OPT_B:\n\tdo_b();\n\tbreak;\ndefault:\n\treturn -EINVAL;\n}"
    block = slice_case_block(code, "OPT_A")
    assert "do_a" in block and "do_b" not in block


def test_replay_and_recording_backends():
    replay = ReplayBackend({"identifier": ["## IDENTIFIERS\n- IDENT: X | SYSCALL: ioctl\n"]})
    recorder = RecordingBackend(replay)
    completion = recorder.query(Prompt(kind="identifier", subject="s", text="hello"))
    assert "IDENT: X" in completion.text
    assert len(recorder.exchanges) == 1
    with pytest.raises(LLMProtocolError):
        replay.query(Prompt(kind="type", subject="s", text="hello"))


def test_replay_replies_are_keyed_by_prompt_content():
    """Replies depend on prompt content + per-prompt occurrence, never on
    global arrival order — the property that makes the backend engine-safe."""
    from repro.llm import prompt_key

    first = Prompt(kind="identifier", subject="a", text="one")
    second = Prompt(kind="identifier", subject="b", text="two")
    assert prompt_key(first) != prompt_key(second)
    assert prompt_key(first) == prompt_key(Prompt(kind="identifier", subject="a", text="one"))

    replay = ReplayBackend({"identifier": ["reply-0", "reply-1"]})
    # Interleaving distinct prompts does not steal each other's replies:
    # each distinct prompt starts its own sequence.
    assert replay.query(first).text == "reply-0"
    assert replay.query(second).text == "reply-0"
    assert replay.query(first).text == "reply-1"
    assert replay.query(second).text == "reply-1"
    # The last reply repeats once a prompt's sequence is exhausted.
    assert replay.query(first).text == "reply-1"


def test_replay_exact_prompt_scripts_win_over_kind_replies():
    probe = Prompt(kind="identifier", subject="x", text="special")
    replay = ReplayBackend({"identifier": ["generic"]})
    replay.script(probe, "scripted-0", "scripted-1")
    assert replay.query(probe).text == "scripted-0"
    assert replay.query(probe).text == "scripted-1"
    assert replay.query(Prompt(kind="identifier", subject="x", text="plain")).text == "generic"


def test_replay_is_schedule_independent_under_threads():
    import threading

    replay = ReplayBackend(default="fallback")
    prompts = [Prompt(kind="identifier", subject=f"s{i}", text=f"t{i}") for i in range(6)]
    for i, prompt in enumerate(prompts):
        replay.script(prompt, f"reply-{i}")

    answers: dict[int, str] = {}
    barrier = threading.Barrier(6)

    def worker(index: int) -> None:
        barrier.wait()
        answers[index] = replay.query(prompts[index]).text

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert answers == {i: f"reply-{i}" for i in range(6)}


def test_recording_backend_merges_worker_exchanges():
    from repro.llm import OracleBackend as Oracle

    parent = RecordingBackend(Oracle())
    worker = RecordingBackend(Oracle())
    prompt = Prompt(kind="identifier", subject="w", text="## Registration\nnothing\n")
    worker.query(prompt)
    parent.merge_exchanges(worker.take_exchanges())
    assert len(parent.exchanges) == 1
    assert parent.exchanges_for(prompt)[0].prompt.subject == "w"
