"""Unit tests for syzlang type expressions."""

import pytest

from repro.syzlang import (
    ArrayType, BufferType, ConstType, Field, FilenameType, FlagsType, IntType,
    LenType, NamedTypeRef, PtrType, ResourceRef, StringType, VoidType,
)
from repro.syzlang.types import substitute_named_refs, type_from_simple_name, walk_type


def test_int_render_plain():
    assert IntType("int32").render() == "int32"


def test_int_render_range():
    assert IntType("int32", 0, 3).render() == "int32[0:3]"


def test_int_rejects_bad_width():
    with pytest.raises(ValueError):
        IntType("int128")


def test_int_rejects_inverted_range():
    with pytest.raises(ValueError):
        IntType("int32", 5, 1)


def test_const_render_macro():
    assert ConstType("DM_VERSION", "int32").render() == "const[DM_VERSION, int32]"


def test_const_referenced_constants():
    assert list(ConstType("DM_VERSION").referenced_constants()) == ["DM_VERSION"]
    assert list(ConstType(7).referenced_constants()) == []


def test_string_render_single_value():
    assert StringType(("/dev/msm",)).render() == 'string["/dev/msm"]'


def test_string_byte_size_includes_nul():
    assert StringType(("/dev/msm",)).byte_size() == len("/dev/msm") + 1


def test_ptr_requires_valid_direction():
    with pytest.raises(ValueError):
        PtrType("sideways", IntType())


def test_ptr_render_nested():
    expr = PtrType("inout", ArrayType(IntType("int8"), 4))
    assert expr.render() == "ptr[inout, array[int8, 4]]"


def test_array_byte_size_fixed():
    assert ArrayType(IntType("int32"), 3).byte_size() == 12


def test_len_render():
    assert LenType("devices", "int32").render() == "len[devices, int32]"


def test_flags_references_name():
    assert list(FlagsType("dm_flags").referenced_names()) == ["dm_flags"]


def test_named_ref_and_resource_ref_names():
    assert list(NamedTypeRef("dm_ioctl").referenced_names()) == ["dm_ioctl"]
    assert list(ResourceRef("fd_dm").referenced_names()) == ["fd_dm"]


def test_walk_type_traverses_pointers_and_arrays():
    expr = PtrType("in", ArrayType(NamedTypeRef("inner")))
    names = [type(node).__name__ for node in walk_type(expr)]
    assert names == ["PtrType", "ArrayType", "NamedTypeRef"]


def test_substitute_named_refs():
    expr = PtrType("in", NamedTypeRef("old"))
    replaced = substitute_named_refs(expr, {"old": "new"})
    assert replaced.render() == "ptr[in, new]"


def test_type_from_simple_name():
    assert isinstance(type_from_simple_name("int64"), IntType)
    assert isinstance(type_from_simple_name("string"), StringType)
    assert isinstance(type_from_simple_name("filename"), FilenameType)
    assert isinstance(type_from_simple_name("void"), VoidType)
    assert isinstance(type_from_simple_name("dm_ioctl"), NamedTypeRef)


def test_field_render_with_attrs():
    field = Field("id", IntType("int32"), ("out",))
    assert field.render() == "id int32 (out)"


def test_buffer_direction_validation():
    with pytest.raises(ValueError):
        BufferType("both")
