"""Tests for the fuzzing substrate: generation, execution, campaigns."""

from hypothesis import given, settings, strategies as st

from repro.fuzzer import (
    Fuzzer, KernelExecutor, ProgramGenerator, StructValue, run_repeated_campaigns,
)


def test_program_generation_respects_dependencies(small_kernel, dm_result):
    generator = ProgramGenerator(dm_result.suite, small_kernel.constants, seed=3)
    program = generator.generate()
    assert program.calls, "producer-rooted programs must not be empty"
    assert program.calls[0].syscall in ("openat", "socket")


def test_executor_requires_correct_device_path(small_kernel, dm_result):
    executor = KernelExecutor(small_kernel)
    generator = ProgramGenerator(dm_result.suite, small_kernel.constants, seed=1)
    program = generator.generate()
    baseline = executor.execute(program)
    assert baseline.coverage
    # Corrupt the device path: coverage must collapse to nothing.
    program.calls[0].args["file"] = "/dev/wrong-node"
    broken = executor.execute(program)
    assert not broken.coverage


def test_executor_rejects_wrong_command_values(small_kernel, dm_result):
    executor = KernelExecutor(small_kernel)
    generator = ProgramGenerator(dm_result.suite, small_kernel.constants, seed=2)
    program = generator.generate()
    covered = executor.execute(program).labels()
    deep = {block for block in covered if ":base:" in block}
    for call in program.calls[1:]:
        if "cmd" in call.args:
            call.args["cmd"] = 0xDEADBEEF
    shallow = executor.execute(program).labels()
    assert not {block for block in shallow if ":base:" in block}
    assert deep, "the uncorrupted program must reach per-command base blocks"


def test_typed_payloads_unlock_guard_blocks(small_kernel, dm_result, syzdescribe):
    executor = KernelExecutor(small_kernel)
    kg_campaign = Fuzzer(small_kernel, dm_result.suite, seed=7, executor=executor).run(400)
    guard_blocks = {b for b in kg_campaign.coverage if ":guard" in b}
    assert guard_blocks, "typed specs should reach guarded blocks"


def test_kernelgpt_spec_finds_dm_bugs(small_kernel, dm_result):
    campaign = Fuzzer(small_kernel, dm_result.suite, seed=11).run(1500)
    assert campaign.unique_crashes >= 1
    assert any(bug.startswith("dm-") for bug in campaign.crash_log.bug_ids())


def test_syzkaller_specs_cannot_find_dm_bugs(small_kernel, syzkaller_corpus):
    suite = syzkaller_corpus.flatten()
    campaign = Fuzzer(small_kernel, suite, seed=11).run(800)
    assert not any(bug.startswith("dm-") for bug in campaign.crash_log.bug_ids())


def test_repeated_campaigns_are_seed_deterministic(small_kernel, dm_result):
    first = run_repeated_campaigns(small_kernel, dm_result.suite, repetitions=2, budget_programs=150)
    second = run_repeated_campaigns(small_kernel, dm_result.suite, repetitions=2, budget_programs=150)
    assert [c.coverage_count for c in first] == [c.coverage_count for c in second]
    assert first[0].coverage == second[0].coverage


def test_campaign_metrics(small_kernel, rds_result):
    campaign = Fuzzer(small_kernel, rds_result.suite, seed=5).run(500)
    assert campaign.executed_programs == 500
    assert campaign.coverage_count == len(campaign.coverage)
    assert campaign.unique_coverage_vs(set()) == campaign.coverage_count


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_property_unknown_commands_never_crash(small_kernel, value):
    """No single ioctl with an arbitrary command can crash the simulated kernel
    without a typed payload — crashes require spec-guided arguments."""
    from repro.fuzzer import Call, Program, ResourceValue

    executor = KernelExecutor(small_kernel)
    program = Program([
        Call("openat", "openat$dm", {"file": "/dev/mapper/control"}),
        Call("ioctl", "ioctl$X", {"fd": ResourceValue(0), "cmd": value, "arg": None}),
    ])
    result = executor.execute(program)
    assert not result.crashes
