"""Shared fixtures: a small kernel, its extractor, and generation artifacts.

Everything expensive is session-scoped so the suite stays fast while every
module exercises the real end-to-end stack (no mocks of our own substrates).
"""

import pytest

from repro.baselines import SyzDescribe, build_syzkaller_corpus
from repro.core import KernelGPT
from repro.extractor import KernelExtractor
from repro.kernel import build_default_kernel
from repro.llm import OracleBackend


@pytest.fixture(scope="session")
def small_kernel():
    return build_default_kernel("small")


@pytest.fixture(scope="session")
def extractor(small_kernel):
    return KernelExtractor(small_kernel)


@pytest.fixture(scope="session")
def kernelgpt(small_kernel, extractor):
    return KernelGPT(small_kernel, OracleBackend(), extractor=extractor)


@pytest.fixture(scope="session")
def syzdescribe(small_kernel, extractor):
    return SyzDescribe(small_kernel, extractor=extractor)


@pytest.fixture(scope="session")
def syzkaller_corpus(small_kernel):
    return build_syzkaller_corpus(small_kernel)


@pytest.fixture(scope="session")
def dm_result(kernelgpt):
    return kernelgpt.generate_for_handler("dm_ctl_fops")


@pytest.fixture(scope="session")
def kvm_result(kernelgpt):
    return kernelgpt.generate_for_handler("kvm_fops")


@pytest.fixture(scope="session")
def rds_result(kernelgpt):
    return kernelgpt.generate_for_handler("rds_proto_ops")
