"""Round-trip property tests: parse(serialize(ast)) == ast, over real corpora.

The syzlang layers had no round-trip coverage: the parser and serializer
were each tested against hand-written snippets, but never against each
other over the suites the system actually produces.  These tests close the
loop over every suite in the built Syzkaller corpus and in a KernelGPT
generation run, plus the SyzDescribe baseline's output — and pin down the
validator's rejection behaviour for the malformed-suite classes the repair
stage depends on.
"""

import pytest

from repro.syzlang import (
    ErrorCode,
    SpecSuite,
    parse_suite,
    serialize_suite,
    validate_suite,
)


def assert_roundtrips(suite: SpecSuite) -> None:
    """parse(serialize(suite)) must reproduce every definition exactly.

    Definitions are frozen dataclasses, so equality is structural and deep;
    dict comparison ignores insertion order, which is the one thing the
    serializer intentionally normalises (it sorts definitions).
    """
    text = serialize_suite(suite, header=False)
    parsed = parse_suite(text, name=suite.name)
    assert dict(parsed.resources) == dict(suite.resources)
    assert dict(parsed.flags) == dict(suite.flags)
    assert dict(parsed.structs) == dict(suite.structs)
    assert dict(parsed.unions) == dict(suite.unions)
    assert dict(parsed.syscalls) == dict(suite.syscalls)
    # Serialization is a fixed point: serializing the parse reproduces the
    # exact bytes, so suites can cross process boundaries as text.
    assert serialize_suite(parsed, header=False) == text


def test_syzkaller_corpus_roundtrips(syzkaller_corpus):
    assert len(syzkaller_corpus) > 0
    for handler, suite in syzkaller_corpus:
        assert_roundtrips(suite)


def test_generated_suites_roundtrip(kernelgpt):
    run = kernelgpt.generate_for_handlers(
        ["dm_ctl_fops", "kvm_fops", "rds_proto_ops", "cec_devnode_fops"]
    )
    assert run.results
    for handler, result in run.results.items():
        assert_roundtrips(result.suite)


def test_syzdescribe_suites_roundtrip(syzdescribe):
    result = syzdescribe.analyze_handler("kvm_fops")
    assert result.valid and result.suite is not None
    assert_roundtrips(result.suite)


def test_flattened_corpus_roundtrips(syzkaller_corpus):
    assert_roundtrips(syzkaller_corpus.flatten("syzkaller"))


def test_syscall_comments_roundtrip(syzkaller_corpus):
    """Provenance comments survive serialize -> parse."""
    for _, suite in syzkaller_corpus:
        commented = [c for c in suite if c.comment]
        if not commented:
            continue
        parsed = parse_suite(serialize_suite(suite, header=False))
        for syscall in commented:
            assert parsed.get_syscall(syscall.full_name).comment == syscall.comment
        return
    pytest.skip("corpus has no commented syscalls")


# --------------------------------------------------------------- rejections
def _errors_of(text: str, constants=None):
    report = validate_suite(parse_suite(text), constants)
    return {issue.code for issue in report.errors}


def test_validator_rejects_unknown_constant(small_kernel):
    text = (
        "resource fd_x[fd]\n\n"
        "openat$x(fd const[AT_FDCWD, int64], file ptr[in, string[\"/dev/x\"]], "
        "flags const[O_RDWR, int32]) fd_x\n"
        "ioctl$BOGUS(fd fd_x, cmd const[TOTALLY_UNDEFINED_MACRO, int32], arg const[0, int64])\n"
    )
    assert ErrorCode.UNKNOWN_CONSTANT in _errors_of(text, small_kernel.constants)


def test_validator_rejects_undefined_type(small_kernel):
    text = (
        "resource fd_x[fd]\n\n"
        "openat$x(fd const[AT_FDCWD, int64], file ptr[in, string[\"/dev/x\"]], "
        "flags const[O_RDWR, int32]) fd_x\n"
        "ioctl$X(fd fd_x, cmd const[0, int32], arg ptr[in, no_such_struct])\n"
    )
    assert ErrorCode.UNDEFINED_TYPE in _errors_of(text, small_kernel.constants)


def test_validator_rejects_undefined_resource(small_kernel):
    # A bare undeclared name in a parameter is indistinguishable from a type
    # reference, so it reports undefined-type; a return resource is
    # unambiguous and reports undefined-resource.
    text = "openat$x(fd const[AT_FDCWD, int64], file ptr[in, string[\"/dev/x\"]], flags const[O_RDWR, int32]) fd_never_defined\n"
    assert ErrorCode.UNDEFINED_RESOURCE in _errors_of(text, small_kernel.constants)
    param_text = "ioctl$X(fd fd_never_defined, cmd const[0, int32], arg const[0, int64])\n"
    assert ErrorCode.UNDEFINED_TYPE in _errors_of(param_text, small_kernel.constants)


def test_validator_rejects_bad_len_target(small_kernel):
    text = (
        "resource fd_x[fd]\n\n"
        "openat$x(fd const[AT_FDCWD, int64], file ptr[in, string[\"/dev/x\"]], "
        "flags const[O_RDWR, int32]) fd_x\n"
        "x_args {\n"
        "\tcount len[no_such_field, int32]\n"
        "\tdata array[int8]\n"
        "}\n\n"
        "ioctl$X(fd fd_x, cmd const[0, int32], arg ptr[in, x_args])\n"
    )
    assert ErrorCode.BAD_LEN_TARGET in _errors_of(text, small_kernel.constants)


def test_parse_rejects_malformed_input():
    from repro.errors import SyzlangParseError

    for bad in (
        "this is not syzlang at all !!!",
        "ioctl$X(fd\n",                      # unterminated parameter list
        "x_args {\n\tfield_without_type\n}\n",
    ):
        with pytest.raises(SyzlangParseError):
            parse_suite(bad)
