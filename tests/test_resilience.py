"""The resilience layer: deterministic faults, retries, breakers, degradation.

The contract under test (DESIGN.md "Resilience layer", determinism rule 11):

* a :class:`FaultPlan` is a pure, picklable function of
  ``(seed, route, prompt digest, occurrence)`` — chaos runs are exactly as
  reproducible as fault-free ones;
* :class:`FaultyBackend` raises *before* the inner backend meters, serves
  the non-faulted remainder, and attaches batch state to the raised error;
* :class:`ResilientBackend` re-sends only failed sub-requests, charges each
  distinct query once across attempts, fails fast on permanent faults and
  re-raises with ``attempts`` stamped on exhaustion;
* :class:`CircuitBreaker` is a count-based closed/open/half-open machine and
  :class:`BackendPool` fails routed requests over to healthy members with
  exact per-member usage attribution;
* the coalescer isolates tenant faults (a poisoned submission never fails
  its riders) and the job service retries jobs on transient faults only;
* rule 11: under any fixed fault plan, generation output is byte-identical
  across jobs × executor and identical to the fault-free run.
"""

import pickle
import threading

import pytest

from repro.engine import (
    ExecutionEngine,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
)
from repro.errors import (
    BackendError,
    BackendTimeout,
    MalformedReply,
    RateLimited,
    TransientBackendError,
    is_permanent_fault,
    is_transient_fault,
)
from repro.llm import (
    BackendPool,
    BatchCoalescer,
    FaultPlan,
    FaultyBackend,
    LLMBackend,
    LLMRequest,
    OracleBackend,
    Prompt,
    ReplayBackend,
    ResilientBackend,
    RetryPolicy,
    request_digest,
    resilient_analyst,
)
from repro.llm.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    wire_resilience_events,
)


def _prompt(index: int, kind: str = "identifier") -> Prompt:
    return Prompt(kind=kind, subject=f"subject-{index}", text=f"## Registration\nprobe {index}\n")


def _prompts(count: int) -> list[Prompt]:
    return [_prompt(index) for index in range(count)]


# ------------------------------------------------------------ error taxonomy
class TestErrorTaxonomy:
    def test_transient_hierarchy(self):
        for error in (
            TransientBackendError("x"),
            BackendTimeout("x", timeout=1.0),
            RateLimited("x", retry_after=0.5),
            MalformedReply("x", excerpt="?"),
        ):
            assert error.is_transient
            assert is_transient_fault(error)
            assert not is_permanent_fault(error)

    def test_permanent_is_backend_error_but_not_transient(self):
        error = BackendError("dead key", route="gpt-4", subject="h0")
        assert not error.is_transient
        assert is_permanent_fault(error)
        assert error.route == "gpt-4" and error.subject == "h0"

    def test_unclassified_errors_are_neither(self):
        # RuntimeError keeps its historical retry semantics everywhere: it
        # is not a classified backend fault, so it is *not* permanent.
        assert not is_transient_fault(RuntimeError("boom"))
        assert not is_permanent_fault(RuntimeError("boom"))

    def test_attach_batch_state_is_one_shot_metadata(self):
        error = TransientBackendError("partial")
        assert error.served is None and error.failed is None
        error.attach_batch_state({0: "c"}, ((1, error),))
        assert error.served == {0: "c"}
        assert error.failed == ((1, error),)


# ---------------------------------------------------------------- fault plans
class TestFaultPlan:
    def test_parse_fields_and_shorthand(self):
        plan = FaultPlan.parse("rate=0.2,seed=11,max=3,retry-after=0.5,kinds=timeout+rate-limit")
        assert plan.rate == 0.2 and plan.seed == 11
        assert plan.max_faults_per_key == 3 and plan.retry_after == 0.5
        assert plan.kinds == ("timeout", "rate-limit")
        assert FaultPlan.parse("0.3").rate == 0.3

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("rate=2.0")
        with pytest.raises(ValueError):
            FaultPlan.parse("nope=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("seed=3")  # no rate
        with pytest.raises(ValueError):
            FaultPlan(rate=0.1, kinds=("bogus",))

    def test_fault_for_is_pure_and_seed_sensitive(self):
        plan_a = FaultPlan(rate=0.5, seed=7)
        plan_b = FaultPlan(rate=0.5, seed=7)
        plan_c = FaultPlan(rate=0.5, seed=8)
        digests = [request_digest(_prompt(index)) for index in range(64)]
        draws_a = [plan_a.fault_for(None, digest, 0) for digest in digests]
        draws_b = [plan_b.fault_for(None, digest, 0) for digest in digests]
        draws_c = [plan_c.fault_for(None, digest, 0) for digest in digests]
        assert draws_a == draws_b          # same fields → same schedule
        assert draws_a != draws_c          # the seed matters
        assert any(draws_a) and not all(draws_a)  # a genuine mix at rate 0.5

    def test_rate_zero_and_occurrence_cap_never_fault(self):
        plan = FaultPlan(rate=1.0, max_faults_per_key=2)
        digest = request_digest(_prompt(0))
        assert FaultPlan(rate=0.0).fault_for(None, digest, 0) is None
        assert plan.fault_for(None, digest, 0) is not None
        assert plan.fault_for(None, digest, 1) is not None
        assert plan.fault_for(None, digest, 2) is None  # converges by attempt 3

    def test_pickled_plan_agrees_on_every_decision(self):
        plan = FaultPlan(rate=0.4, seed=3)
        clone = pickle.loads(pickle.dumps(plan))
        for index in range(32):
            digest = request_digest(_prompt(index))
            for occurrence in range(3):
                assert plan.fault_for("gpt-4", digest, occurrence) == clone.fault_for(
                    "gpt-4", digest, occurrence
                )

    def test_error_for_builds_the_typed_hierarchy(self):
        plan = FaultPlan(rate=1.0, retry_after=0.25)
        request = LLMRequest.of(_prompt(0))
        assert isinstance(plan.error_for("timeout", request, 0), BackendTimeout)
        limited = plan.error_for("rate-limit", request, 0)
        assert isinstance(limited, RateLimited) and limited.retry_after == 0.25
        assert isinstance(plan.error_for("malformed", request, 0), MalformedReply)
        permanent = plan.error_for("permanent", request, 0)
        assert is_permanent_fault(permanent)
        assert isinstance(plan.error_for("transient", request, 0), TransientBackendError)

    def test_request_digest_covers_the_full_batch_key(self):
        base = request_digest(_prompt(0))
        assert request_digest(_prompt(0)) == base
        assert request_digest(_prompt(1)) != base
        assert request_digest(_prompt(0, kind="repair")) != base
        assert request_digest(LLMRequest(prompt=_prompt(0), route="gpt-3.5")) != base


# -------------------------------------------------------------- FaultyBackend
def _mixed_fault_seed(prompts: list[Prompt], rate: float = 0.5) -> int:
    """A seed whose occurrence-0 draws fault some but not all of ``prompts``."""
    for seed in range(200):
        plan = FaultPlan(rate=rate, seed=seed)
        draws = [plan.fault_for(None, request_digest(p), 0) for p in prompts]
        if any(draws) and not all(draws):
            return seed
    raise AssertionError("no mixed seed found")


class TestFaultyBackend:
    def test_serves_clean_remainder_and_attaches_batch_state(self):
        prompts = _prompts(6)
        seed = _mixed_fault_seed(prompts)
        plan = FaultPlan(rate=0.5, seed=seed)
        backend = FaultyBackend(OracleBackend(), plan)
        faulted = {
            index
            for index, prompt in enumerate(prompts)
            if plan.fault_for(None, request_digest(prompt), 0) is not None
        }
        with pytest.raises(TransientBackendError) as excinfo:
            backend.complete_batch(prompts)
        error = excinfo.value
        assert set(error.served) == set(range(len(prompts))) - faulted
        assert {position for position, _ in error.failed} == faulted
        # The primary is the lowest faulted position's error.
        assert error is min(error.failed)[1]
        # Only the clean remainder was metered (shared meter with inner).
        assert backend.usage.queries == len(prompts) - len(faulted)
        assert backend.usage is backend.inner.usage

    def test_occurrences_advance_until_the_cap_converges(self):
        plan = FaultPlan(rate=1.0, seed=1, max_faults_per_key=2, kinds=("transient",))
        backend = FaultyBackend(OracleBackend(), plan)
        prompt = _prompt(0)
        for _ in range(2):
            with pytest.raises(TransientBackendError):
                backend.complete_batch([prompt])
        # Occurrence 2 exceeds the cap: the third attempt serves.
        assert backend.complete_batch([prompt])[0].text
        assert backend.usage.queries == 1  # charged once, on the serving attempt
        assert backend.stats.faults_injected == 2

    def test_duplicates_share_one_fault_decision(self):
        plan = FaultPlan(rate=1.0, seed=1, max_faults_per_key=1, kinds=("transient",))
        backend = FaultyBackend(OracleBackend(), plan)
        prompt = _prompt(0)
        with pytest.raises(TransientBackendError) as excinfo:
            backend.complete_batch([prompt, prompt, prompt])
        # One occurrence consumed, every duplicate position listed as failed.
        assert {position for position, _ in excinfo.value.failed} == {0, 1, 2}
        assert backend.complete_batch([prompt, prompt])[0].text  # occurrence 1 ≥ max

    def test_pickling_resets_worker_local_counters(self):
        plan = FaultPlan(rate=1.0, seed=1, max_faults_per_key=1, kinds=("transient",))
        backend = FaultyBackend(OracleBackend(), plan)
        prompt = _prompt(0)
        with pytest.raises(TransientBackendError):
            backend.complete_batch([prompt])
        assert backend.complete_batch([prompt])  # parent converged
        clone = pickle.loads(pickle.dumps(backend))
        # The clone's schedule restarts at occurrence zero: it faults again.
        with pytest.raises(TransientBackendError):
            clone.complete_batch([prompt])
        assert clone.stats.faults_injected == 1
        assert clone.usage is clone.inner.usage  # meter-sharing survives pickling

    def test_transparent_at_rate_zero(self):
        backend = FaultyBackend(OracleBackend(), FaultPlan(rate=0.0))
        baseline = OracleBackend()
        prompts = _prompts(4)
        assert [c.text for c in backend.complete_batch(prompts)] == [
            c.text for c in baseline.complete_batch(prompts)
        ]
        assert backend.store_profile() == baseline.store_profile()


# ---------------------------------------------------------------- retry policy
class TestRetryPolicy:
    def test_parse_fields_and_shorthand(self):
        policy = RetryPolicy.parse("attempts=6,base=0.1,max=2.0,multiplier=3,seed=5")
        assert policy.max_attempts == 6 and policy.base_delay == 0.1
        assert policy.max_delay == 2.0 and policy.multiplier == 3.0
        assert policy.jitter_seed == 5
        assert RetryPolicy.parse("7").max_attempts == 7
        with pytest.raises(ValueError):
            RetryPolicy.parse("bogus=1")
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_delay_is_deterministic_jittered_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.3, multiplier=2.0, jitter_seed=9)
        first = policy.delay_for(1, "key")
        assert first == policy.delay_for(1, "key")          # reproducible
        assert 0.05 <= first < 0.1                          # jitter ∈ [0.5, 1.0)
        assert policy.delay_for(1, "other-key") != first    # key-sensitive
        assert policy.delay_for(9, "key") <= 0.3            # capped

    def test_retry_after_is_a_lower_bound(self):
        policy = RetryPolicy(base_delay=0.0)
        assert policy.delay_for(1, "key") == 0.0
        assert policy.delay_for(1, "key", retry_after=0.4) == 0.4


# ------------------------------------------------------------ ResilientBackend
class _InnermostCounter(LLMBackend):
    """Counts how many times each distinct prompt is actually computed."""

    def __init__(self):
        super().__init__(model="counter")
        self.computed: dict[str, int] = {}

    def complete_batch(self, requests):
        normalized = [LLMRequest.of(item) for item in requests]
        return self._serve_batch(normalized)

    def complete(self, prompt):
        self.computed[prompt.subject] = self.computed.get(prompt.subject, 0) + 1
        from repro.llm import Completion

        return Completion(text=f"reply:{prompt.subject}", model=self.model)


class TestResilientBackend:
    def test_converges_to_fault_free_bytes_and_usage(self):
        prompts = _prompts(8)
        baseline = OracleBackend()
        expected = [c.text for c in baseline.complete_batch(prompts)]
        backend = ResilientBackend(
            FaultyBackend(OracleBackend(), FaultPlan(rate=0.5, seed=_mixed_fault_seed(prompts)))
        )
        observed = [c.text for c in backend.complete_batch(prompts)]
        assert observed == expected
        # Each distinct query charged exactly once across all attempts.
        assert backend.usage.queries == len(prompts)
        assert backend.usage is backend.inner.usage

    def test_only_failed_requests_are_resent(self):
        prompts = _prompts(8)
        seed = _mixed_fault_seed(prompts)
        counter = _InnermostCounter()
        backend = ResilientBackend(
            FaultyBackend(counter, FaultPlan(rate=0.5, seed=seed, kinds=("transient",)))
        )
        backend.complete_batch(prompts)
        # The innermost backend computed every distinct prompt exactly once:
        # served requests were never re-sent by the retry loop.
        assert counter.computed == {p.subject: 1 for p in prompts}
        assert backend.stats.retries >= 1
        assert backend.stats.recovered_requests >= 1

    def test_exhaustion_reraises_with_attempts_and_state(self):
        plan = FaultPlan(rate=1.0, seed=1, max_faults_per_key=99, kinds=("transient",))
        backend = ResilientBackend(
            FaultyBackend(OracleBackend(), plan), RetryPolicy(max_attempts=3)
        )
        with pytest.raises(TransientBackendError) as excinfo:
            backend.complete_batch([_prompt(0)])
        assert excinfo.value.attempts == 3
        assert backend.stats.exhausted == 1
        # Batch state is relative to the caller's frame.
        assert {position for position, _ in excinfo.value.failed} == {0}

    def test_permanent_faults_fail_fast(self):
        plan = FaultPlan(rate=1.0, seed=1, max_faults_per_key=99, kinds=("permanent",))
        backend = ResilientBackend(FaultyBackend(OracleBackend(), plan))
        with pytest.raises(BackendError) as excinfo:
            backend.complete_batch([_prompt(0)])
        assert is_permanent_fault(excinfo.value)
        assert excinfo.value.attempts == 1
        assert backend.stats.failed_fast == 1 and backend.stats.retries == 0

    def test_rate_limit_retry_after_drives_the_sleep(self):
        sleeps: list[float] = []
        plan = FaultPlan(
            rate=1.0, seed=1, max_faults_per_key=1, kinds=("rate-limit",), retry_after=0.05
        )
        backend = ResilientBackend(
            FaultyBackend(OracleBackend(), plan), sleep=sleeps.append
        )
        backend.complete_batch([_prompt(0)])
        assert sleeps and sleeps[0] >= 0.05
        assert backend.stats.slept >= 0.05

    def test_retry_schedule_is_reproducible(self):
        def run() -> list[float]:
            sleeps: list[float] = []
            plan = FaultPlan(rate=1.0, seed=2, max_faults_per_key=2, kinds=("transient",))
            backend = ResilientBackend(
                FaultyBackend(OracleBackend(), plan),
                RetryPolicy(base_delay=0.01, jitter_seed=4),
                sleep=sleeps.append,
            )
            backend.complete_batch(_prompts(4))
            return sleeps

        assert run() == run()

    def test_on_retry_hook_failures_never_break_serving(self):
        def broken_hook(info):
            raise RuntimeError("observer crashed")

        plan = FaultPlan(rate=1.0, seed=1, max_faults_per_key=1, kinds=("transient",))
        backend = ResilientBackend(
            FaultyBackend(OracleBackend(), plan), on_retry=broken_hook
        )
        assert backend.complete_batch([_prompt(0)])[0].text

    def test_pickled_chain_serves_identically(self):
        prompts = _prompts(6)
        plan = FaultPlan(rate=0.5, seed=_mixed_fault_seed(prompts))
        backend = ResilientBackend(FaultyBackend(OracleBackend(), plan))
        expected = [c.text for c in backend.complete_batch(prompts)]
        clone = pickle.loads(pickle.dumps(backend))
        assert [c.text for c in clone.complete_batch(prompts)] == expected
        assert clone.usage is clone.inner.usage is clone.inner.inner.usage

    def test_resilient_analyst_wiring(self):
        plain = resilient_analyst(OracleBackend())
        assert isinstance(plain, OracleBackend)
        chaos = resilient_analyst(OracleBackend(), fault_plan="rate=0.2,seed=7")
        assert isinstance(chaos, ResilientBackend)
        assert isinstance(chaos.inner, FaultyBackend)
        bare = resilient_analyst(OracleBackend(), fault_plan="rate=0.2", retry_spec="off")
        assert isinstance(bare, FaultyBackend)
        tuned = resilient_analyst(OracleBackend(), retry_spec="attempts=6")
        assert isinstance(tuned, ResilientBackend)
        assert tuned.policy.max_attempts == 6


# ------------------------------------------------------- _serve_batch contract
class _FlakyOracle(OracleBackend):
    """Oracle whose poisoned prompts fail transiently ``fail_times`` times."""

    def __init__(self, fail_times: int = 1):
        super().__init__()
        self.fail_times = fail_times
        self._failures: dict[str, int] = {}

    def complete(self, prompt):
        if "poison" in prompt.text:
            count = self._failures.get(prompt.subject, 0)
            if count < self.fail_times:
                self._failures[prompt.subject] = count + 1
                raise TransientBackendError(f"flaky {prompt.subject}", subject=prompt.subject)
        return super().complete(prompt)


class TestServeBatchEnrichment:
    def test_typed_fault_carries_served_prefix_and_failed_positions(self):
        backend = _FlakyOracle(fail_times=99)
        good = _prompt(0)
        poison = Prompt(kind="identifier", subject="bad", text="## Registration\npoison\n")
        with pytest.raises(TransientBackendError) as excinfo:
            # Duplicate of ``good`` rides along: both positions served.
            backend.complete_batch([good, poison, good])
        error = excinfo.value
        assert set(error.served) == {0, 2}
        assert [position for position, _ in error.failed] == [1]
        # The served prefix was metered (serial-equivalent accounting).
        assert backend.usage.queries == 1

    def test_budget_slots_released_for_unserved_requests(self):
        backend = _FlakyOracle(fail_times=1)
        backend._query_budget = 4  # noqa: SLF001 - exercising the reservation path
        poison = Prompt(kind="identifier", subject="bad", text="## Registration\npoison\n")
        with pytest.raises(TransientBackendError):
            backend.complete_batch([_prompt(0), poison])
        # One slot consumed (the served prompt); the poisoned slot released.
        assert backend.remaining_budget() == 3

    def test_retry_layer_over_serve_batch_converges(self):
        backend = ResilientBackend(_FlakyOracle(fail_times=2))
        poison = Prompt(kind="identifier", subject="bad", text="## Registration\npoison\n")
        completions = backend.complete_batch([_prompt(0), poison, _prompt(1)])
        assert len(completions) == 3 and all(c.text for c in completions)
        assert backend.usage.queries == 3  # each distinct charged exactly once
        assert backend.stats.retries == 2


# ------------------------------------------------------------ circuit breakers
class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_success()  # resets the streak
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN

    def test_open_denies_and_probes_every_interval(self):
        breaker = CircuitBreaker(threshold=1, probe_interval=3)
        breaker.record_failure()
        decisions = [breaker.allow() for _ in range(3)]
        assert decisions == [False, False, True]  # third denial becomes the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # only one probe in flight

    def test_probe_success_closes_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, probe_interval=1)
        breaker.record_failure()
        assert breaker.allow()  # immediate probe at interval 1
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_transition_observer_sequence(self):
        breaker = CircuitBreaker(threshold=1, probe_interval=1)
        seen: list[tuple[str, str]] = []
        breaker.on_transition = lambda old, new: seen.append((old, new))
        breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        assert seen == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]

    def test_pickling_drops_the_observer(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.on_transition = lambda old, new: None
        breaker.record_failure()
        clone = pickle.loads(pickle.dumps(breaker))
        assert clone.on_transition is None
        assert clone.stats()["consecutive_failures"] == 1
        clone.record_failure()
        assert clone.state == BREAKER_OPEN


class _DownBackend(LLMBackend):
    """A member that is simply down: every batch raises a transient fault."""

    def __init__(self):
        super().__init__(model="down")
        self.calls = 0

    def complete_batch(self, requests):
        self.calls += 1
        raise TransientBackendError("member down")

    def complete(self, prompt):
        raise NotImplementedError


class TestPoolFailover:
    def _pool(self, threshold: int = 2) -> BackendPool:
        return BackendPool(
            {"primary": _DownBackend(), "backup": ReplayBackend(default="saved")},
            breaker_threshold=threshold,
        )

    def test_failover_serves_from_the_healthy_member(self):
        pool = self._pool()
        completions = pool.complete_batch(_prompts(3))
        assert [c.text for c in completions] == ["saved"] * 3
        stats = pool.breaker_stats()
        assert stats["failovers"] == 3
        assert stats["members"]["primary"]["consecutive_failures"] == 1
        # Usage attribution: the serving member metered the requests, the
        # down member metered nothing, the pool metered the caller's view.
        assert pool.members["backup"].usage.queries == 3
        assert pool.members["primary"].usage.queries == 0
        assert pool.usage.queries == 3

    def test_breaker_opens_and_skips_the_down_member(self):
        pool = self._pool(threshold=2)
        down = pool.members["primary"]
        pool.complete_batch([_prompt(0)])
        pool.complete_batch([_prompt(1)])
        assert pool.breakers["primary"].state == BREAKER_OPEN
        calls_when_opened = down.calls
        pool.complete_batch([_prompt(2)])
        # The open breaker denied the member without calling it.
        assert down.calls == calls_when_opened
        assert pool.breaker_stats()["denied_by_breaker"] >= 1

    def test_all_members_down_raises_with_batch_state(self):
        pool = BackendPool(
            {"a": _DownBackend(), "b": _DownBackend()}, breaker_threshold=3
        )
        with pytest.raises(TransientBackendError) as excinfo:
            pool.complete_batch(_prompts(2))
        assert {position for position, _ in excinfo.value.failed} == {0, 1}

    def test_without_threshold_errors_propagate_directly(self):
        pool = BackendPool({"a": _DownBackend(), "b": ReplayBackend(default="x")})
        assert pool.breakers == {}
        with pytest.raises(TransientBackendError):
            pool.complete_batch([_prompt(0)])

    def test_store_profile_only_changes_when_breakers_are_armed(self):
        plain = BackendPool({"a": ReplayBackend(default="x")})
        armed = BackendPool({"a": ReplayBackend(default="x")}, breaker_threshold=5)
        assert "breaker" not in plain.store_profile()
        assert ";breaker=5" in armed.store_profile()

    def test_wire_resilience_events_reaches_pool_breakers(self):
        events: list[tuple[str, dict]] = []
        pool = self._pool(threshold=1)
        backend = ResilientBackend(pool)
        wire_resilience_events(backend, lambda kind, fields: events.append((kind, fields)))
        pool.complete_batch([_prompt(0)])
        kinds = [kind for kind, _ in events]
        assert "breaker_transition" in kinds
        transition = next(fields for kind, fields in events if kind == "breaker_transition")
        assert transition == {"member": "primary", "from": "closed", "to": "open"}


# --------------------------------------------------- coalescer fault isolation
class _PoisonBackend(LLMBackend):
    """Serves everything except prompts whose text mentions ``poison``."""

    def __init__(self):
        super().__init__(model="poison")

    def complete_batch(self, requests):
        normalized = [LLMRequest.of(item) for item in requests]
        return self._serve_batch(normalized)

    def complete(self, prompt):
        if "poison" in prompt.text:
            raise TransientBackendError(f"poisoned {prompt.subject}")
        from repro.llm import Completion

        return Completion(text=f"reply:{prompt.text}", model=self.model)


def _svc_prompt(text: str) -> Prompt:
    return Prompt(kind="usage", subject="svc", text=text)


class TestCoalescerFaultIsolation:
    def test_poisoned_submission_never_fails_its_riders(self):
        coalescer = BatchCoalescer(_PoisonBackend(), drain=True)
        outcomes: dict[str, object] = {}

        def submit(name: str, text: str) -> None:
            try:
                outcomes[name] = [c.text for c in coalescer.submit([_svc_prompt(text)])]
            except BaseException as error:  # noqa: BLE001 - recorded for assertions
                outcomes[name] = error

        threads = []
        with coalescer.hold():
            for index, (name, text) in enumerate(
                (("good", "fine"), ("bad", "poison pill"), ("also-good", "ok"))
            ):
                thread = threading.Thread(target=submit, args=(name, text))
                thread.start()
                threads.append(thread)
                assert coalescer.wait_for_pending(index + 1)
        for thread in threads:
            thread.join()
        assert outcomes["good"] == ["reply:fine"]
        assert outcomes["also-good"] == ["reply:ok"]
        assert isinstance(outcomes["bad"], TransientBackendError)
        stats = coalescer.stats()
        assert stats["isolated_flushes"] == 1
        assert stats["tenant_faults"] == 1

    def test_observer_errors_are_counted_and_routed(self):
        coalescer = BatchCoalescer(_PoisonBackend(), drain=True)
        routed: list[BaseException] = []
        coalescer.observer = lambda info: (_ for _ in ()).throw(RuntimeError("bad observer"))
        coalescer.on_observer_error = routed.append
        assert [c.text for c in coalescer.submit([_svc_prompt("hello")])] == ["reply:hello"]
        assert coalescer.stats()["observer_errors"] == 1
        assert len(routed) == 1 and isinstance(routed[0], RuntimeError)


# -------------------------------------------------------- job service retries
class _FailFirstBackend(LLMBackend):
    """Raises a classified fault for the first ``failures`` batches."""

    def __init__(self, failures: int, error_type=TransientBackendError):
        super().__init__(model="fail-first")
        self.inner = OracleBackend()
        self.usage = self.inner.usage
        self.remaining = failures
        self.error_type = error_type
        self._lock = threading.Lock()

    def complete_batch(self, requests):
        with self._lock:
            if self.remaining > 0:
                self.remaining -= 1
                raise self.error_type("backend warming up")
        return self.inner.complete_batch(requests)

    def complete(self, prompt):
        raise NotImplementedError


@pytest.fixture(scope="module")
def service_kernel():
    from repro.kernel import build_default_kernel

    return build_default_kernel("small")


class TestJobServiceRetries:
    def _run(self, backend, *, job_retries=0, job_kwargs=None, kernel=None, events=None):
        from repro.experiments.config import quick
        from repro.service import Job, JobService

        with JobService(
            quick(),
            workers=1,
            kernel=kernel,
            backend=backend,
            job_retries=job_retries,
            events=events,
        ) as service:
            handle = service.submit(
                Job(kind="generation", handlers=("dm_ctl_fops",), **(job_kwargs or {}))
            )
            return handle.wait(timeout=120)

    def test_transient_fault_retries_within_budget(self, service_kernel):
        # The merged flush and the isolated re-serve each consume one
        # failure, so two failures fail exactly one job attempt.
        result = self._run(
            _FailFirstBackend(failures=2), job_retries=1, kernel=service_kernel
        )
        assert result.ok, result.error
        assert result.attempts == 2
        assert any(event.stage == "retry" for event in result.events)

    def test_transient_fault_exhausts_budget(self, service_kernel):
        result = self._run(
            _FailFirstBackend(failures=99), job_retries=1, kernel=service_kernel
        )
        assert not result.ok
        assert isinstance(result.error, TransientBackendError)
        assert result.attempts == 2

    def test_permanent_fault_fails_fast_despite_budget(self, service_kernel):
        result = self._run(
            _FailFirstBackend(failures=99, error_type=BackendError),
            job_retries=5,
            kernel=service_kernel,
        )
        assert not result.ok
        assert is_permanent_fault(result.error)
        assert result.attempts == 1  # the budget was never consulted

    def test_job_level_budget_overrides_the_service_default(self, service_kernel):
        result = self._run(
            _FailFirstBackend(failures=2),
            job_retries=0,
            job_kwargs={"retries": 1},
            kernel=service_kernel,
        )
        assert result.ok, result.error
        assert result.attempts == 2

    def test_job_retries_land_in_the_event_log(self, service_kernel):
        from repro.orchestrator.events import EventLog

        log = EventLog()
        result = self._run(
            _FailFirstBackend(failures=2), job_retries=1, kernel=service_kernel,
            events=log,
        )
        assert result.ok, result.error
        retried = [event for event in log.events if event["type"] == "job_retried"]
        assert len(retried) == 1
        assert retried[0]["attempt"] == 1


# ------------------------------------------------------ orchestrator taxonomy
class TestCampaignFaultClassification:
    def test_transient_faults_consume_the_retry_budget(self):
        from repro.experiments.config import quick
        from repro.orchestrator import CampaignPlan, CampaignTask, EventLog, run_campaign_plan

        tasks = [
            CampaignTask.make("flaky", "fault_until", {"succeed_at": 2}, retries=2)
        ]
        log = EventLog()
        result = run_campaign_plan(CampaignPlan(tasks, quick()), events=log)
        assert result.passed
        assert result.outcomes["flaky"].attempts == 2
        assert [e["type"] for e in log.events].count("task_retried") == 1

    def test_permanent_faults_fail_fast_despite_retries(self):
        from repro.experiments.config import quick
        from repro.orchestrator import CampaignPlan, CampaignTask, EventLog, run_campaign_plan

        tasks = [
            CampaignTask.make(
                "dead", "fault_until", {"succeed_at": 99, "transient": False}, retries=5
            )
        ]
        log = EventLog()
        result = run_campaign_plan(CampaignPlan(tasks, quick()), events=log)
        assert not result.passed
        types = [event["type"] for event in log.events]
        assert types.count("task_retried") == 0  # no retry for a permanent fault
        assert types.count("task_failed") == 1

    def test_unclassified_errors_keep_their_retry_semantics(self):
        from repro.experiments.config import quick
        from repro.orchestrator import CampaignPlan, CampaignTask, EventLog, run_campaign_plan

        # RuntimeError (fail_until) retried exactly as before PR 9.
        tasks = [CampaignTask.make("flaky", "fail_until", {"succeed_at": 2}, retries=2)]
        log = EventLog()
        result = run_campaign_plan(CampaignPlan(tasks, quick()), events=log)
        assert result.passed
        assert [e["type"] for e in log.events].count("task_retried") == 1


# ---------------------------------------------------------- rule 11: the matrix
HANDLERS = ["dm_ctl_fops", "cec_devnode_fops", "rds_proto_ops", "udmabuf_fops"]
JOBS_LEVELS = (1, 4)
EXECUTOR_KINDS = ("serial", "thread", "process")


def _engine(kind: str, jobs: int) -> ExecutionEngine:
    if kind == "serial" or jobs <= 1:
        executor = SerialExecutor()
    elif kind == "thread":
        executor = ThreadPoolExecutor(jobs)
    else:
        executor = ProcessPoolExecutor(jobs)
    return ExecutionEngine(jobs=jobs, executor=executor)


def _chaos_backend(rate: float, seed: int = 7) -> LLMBackend:
    return ResilientBackend(FaultyBackend(OracleBackend(), FaultPlan(rate=rate, seed=seed)))


@pytest.fixture(scope="module")
def chaos_baseline(small_kernel, extractor):
    """The fault-free serial run every chaos cell must reproduce."""
    from repro.core import KernelGPT

    generator = KernelGPT(small_kernel, OracleBackend(), extractor=extractor)
    run = generator.generate_for_handlers(HANDLERS)
    suites = {handler: result.suite_text() for handler, result in run.results.items()}
    queries = {handler: result.queries for handler, result in run.results.items()}
    return suites, queries, run.usage_summary()


@pytest.mark.parametrize("jobs", JOBS_LEVELS)
@pytest.mark.parametrize("kind", EXECUTOR_KINDS)
def test_chaos_generation_matrix_is_byte_identical(
    small_kernel, extractor, chaos_baseline, kind, jobs
):
    """Rule 11 at 20% faults: every (jobs, executor) cell reproduces the
    fault-free serial baseline byte for byte, with identical query counts
    and session-attributed usage — retries are invisible in the output."""
    from repro.core import KernelGPT

    baseline_suites, baseline_queries, baseline_usage = chaos_baseline
    engine = _engine(kind, jobs)
    generator = KernelGPT(
        small_kernel, _chaos_backend(rate=0.2), extractor=extractor, engine=engine
    )
    run = generator.generate_for_handlers(HANDLERS, engine=engine)
    assert {h: r.suite_text() for h, r in run.results.items()} == baseline_suites
    assert {h: r.queries for h, r in run.results.items()} == baseline_queries
    assert run.usage_summary() == baseline_usage


@pytest.mark.parametrize("rate", (0.0, 0.05))
def test_chaos_rate_axis_matches_baseline(small_kernel, extractor, chaos_baseline, rate):
    """The rate axis: 0% (wrapper transparency) and 5% chaos both converge."""
    from repro.core import KernelGPT

    baseline_suites, baseline_queries, _ = chaos_baseline
    engine = _engine("thread", 4)
    generator = KernelGPT(
        small_kernel, _chaos_backend(rate=rate), extractor=extractor, engine=engine
    )
    run = generator.generate_for_handlers(HANDLERS, engine=engine)
    assert {h: r.suite_text() for h, r in run.results.items()} == baseline_suites
    assert {h: r.queries for h, r in run.results.items()} == baseline_queries


def test_chaos_fuzz_campaign_matches_fault_free(small_kernel, extractor):
    """A fuzz campaign over chaos-generated specs equals the fault-free one:
    converged generation feeds identical corpora into the fuzzer."""
    from repro.core import KernelGPT
    from repro.fuzzer import run_campaign

    def campaign(backend):
        generator = KernelGPT(small_kernel, backend, extractor=extractor)
        generated = generator.generate_for_handler("dm_ctl_fops")
        result = run_campaign(small_kernel, generated.suite, seed=13, budget_programs=120)
        return (
            generated.suite_text(),
            sorted(result.coverage),
            sorted(result.crash_log.bug_ids()),
            result.executed_programs,
        )

    assert campaign(_chaos_backend(rate=0.2)) == campaign(OracleBackend())


def test_chaos_table1_render_is_byte_identical(small_kernel):
    """Rule 11 end to end: a config-driven chaos table1 render equals the
    fault-free render (the CI chaos-smoke job's in-process twin)."""
    from repro.experiments.config import quick
    from repro.experiments.context import EvaluationContext
    from repro.experiments.table1 import run_table1

    def render(**overrides) -> str:
        config = quick().with_overrides(**overrides)
        return run_table1(EvaluationContext(config, small_kernel)).render()

    assert render(fault_plan="rate=0.2,seed=7") == render()
