"""Tests for the SyzDescribe and existing-Syzkaller baselines."""


def test_syzdescribe_cannot_analyse_sockets(syzdescribe):
    result = syzdescribe.analyze_handler("rds_proto_ops")
    assert not result.valid and "socket" in result.reason


def test_syzdescribe_fails_on_table_dispatch(syzdescribe):
    result = syzdescribe.analyze_handler("dm_ctl_fops")
    assert not result.valid


def test_syzdescribe_wrong_device_name_for_nodename_driver(syzdescribe, extractor, small_kernel):
    # Device mapper registers with .name = "device-mapper" but the real node is
    # the .nodename ("/dev/mapper/control"); the static rule picks the wrong one.
    info = extractor.handler("dm_ctl_fops")
    inferred = syzdescribe._device_path(info.usage_snippets)
    assert inferred == "/dev/device-mapper"
    assert inferred != small_kernel.driver("device-mapper").device_path


def test_syzdescribe_unreadable_names(syzdescribe):
    result = syzdescribe.analyze_handler("kvm_fops")
    assert result.valid
    text = "\n".join(sorted(result.suite.syscall_names()))
    assert "$1" in text or "$2" in text or "$3" in text or "$4" in text or "$5" in text or "$6" in text or "$7" in text or "$8" in text or "$9" in text
    assert any(f.name.startswith("field_") for s in result.suite.structs.values() for f in s.fields)


def test_syzkaller_corpus_truncates_to_described_counts(small_kernel, syzkaller_corpus):
    suite = syzkaller_corpus.get("btrfs_control_fops")
    assert suite is not None
    # btrfs-control: only 1 of 5 ioctls is described upstream (plus openat).
    assert len(suite) == 2


def test_syzkaller_corpus_skips_undescribed_handlers(syzkaller_corpus):
    assert syzkaller_corpus.get("dm_ctl_fops") is None
    assert syzkaller_corpus.get("cec_devnode_fops") is None


def test_syzkaller_corpus_suites_validate(small_kernel, syzkaller_corpus):
    from repro.syzlang import validate_suite
    for handler, suite in list(syzkaller_corpus)[:10]:
        assert validate_suite(suite, small_kernel.constants).is_valid, handler
