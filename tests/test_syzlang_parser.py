"""Parser/serializer tests, including the round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SyzlangParseError
from repro.syzlang import (
    ArrayType, ConstType, IntType, LenType, Param, PtrType, ResourceDef, ResourceRef,
    SpecSuite, StringType, StructDef, Syscall, Field,
    parse_suite, parse_syscall, parse_type, serialize_suite,
)

MSM_SPEC = '''
resource fd_msm[fd]
resource msm_submitqueue_id[int32]

msm_flags = MSM_A, MSM_B

openat$msm(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/msm"]], flags const[O_RDWR, int32]) fd_msm
ioctl$MSM_NEW(fd fd_msm, cmd const[MSM_NEW, int32], arg ptr[inout, drm_msm_submitqueue])

drm_msm_submitqueue {
\tflags flags[msm_flags, int32]
\tprio int32[0:3]
\tid msm_submitqueue_id (out)
}
'''


def test_parse_type_nested_ptr():
    expr = parse_type("ptr[in, array[int32, 3]]")
    assert isinstance(expr, PtrType)
    assert expr.render() == "ptr[in, array[int32, 3]]"


def test_parse_type_const_macro():
    expr = parse_type("const[DM_VERSION, int32]")
    assert isinstance(expr, ConstType)
    assert expr.value == "DM_VERSION"


def test_parse_type_const_literal():
    assert parse_type("const[0x10, int32]").value == 0x10


def test_parse_type_errors_on_garbage():
    with pytest.raises(SyzlangParseError):
        parse_type("ptr[in")
    with pytest.raises(SyzlangParseError):
        parse_type("wibble[foo]")


def test_parse_syscall_with_return():
    syscall = parse_syscall('openat$dm(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]]) fd_dm')
    assert syscall.full_name == "openat$dm"
    assert syscall.returns.name == "fd_dm"
    assert len(syscall.params) == 2


def test_parse_suite_full_document():
    suite = parse_suite(MSM_SPEC, "msm")
    assert set(suite.syscall_names()) == {"openat$msm", "ioctl$MSM_NEW"}
    assert "drm_msm_submitqueue" in suite.structs
    assert suite.resources["msm_submitqueue_id"].kind == "int32"
    assert suite.flags["msm_flags"].values == ("MSM_A", "MSM_B")


def test_round_trip_preserves_suite():
    suite = parse_suite(MSM_SPEC, "msm")
    text = serialize_suite(suite)
    again = parse_suite(text, "msm2")
    assert set(again.syscall_names()) == set(suite.syscall_names())
    assert set(again.structs) == set(suite.structs)
    assert again.structs["drm_msm_submitqueue"].render() == suite.structs["drm_msm_submitqueue"].render()


_idents = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
_widths = st.sampled_from(["int8", "int16", "int32", "int64"])


def _type_strategy():
    base = st.one_of(
        st.builds(IntType, _widths),
        st.builds(ConstType, st.integers(min_value=0, max_value=2**31), _widths),
        st.builds(StringType, st.tuples(st.sampled_from(["/dev/a", "/dev/bb"]))),
    )
    return st.one_of(
        base,
        st.builds(PtrType, st.sampled_from(["in", "out", "inout"]), base),
        st.builds(ArrayType, base, st.one_of(st.none(), st.integers(min_value=0, max_value=16))),
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(_idents, _type_strategy()), min_size=1, max_size=5, unique_by=lambda kv: kv[0]))
def test_property_struct_round_trip(fields):
    """Any struct the library can express survives serialize -> parse."""
    suite = SpecSuite("prop")
    suite.add_struct(StructDef("prop_struct", tuple(Field(name, expr) for name, expr in fields)))
    suite.add_resource(ResourceDef("fd_prop", "fd"))
    suite.add_syscall(
        Syscall("ioctl", "PROP", (
            Param("fd", ResourceRef("fd_prop")),
            Param("arg", PtrType("in", parse_type("prop_struct"))),
        ))
    )
    text = serialize_suite(suite)
    again = parse_suite(text)
    assert "prop_struct" in again.structs
    original = suite.structs["prop_struct"]
    parsed = again.structs["prop_struct"]
    assert [f.name for f in parsed.fields] == [f.name for f in original.fields]
    assert [f.type.render() for f in parsed.fields] == [f.type.render() for f in original.fields]


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1), _widths)
def test_property_const_round_trip(value, width):
    expr = ConstType(value, width)
    assert parse_type(expr.render()).render() == expr.render()
