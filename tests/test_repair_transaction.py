"""Transactional repair protocol: grouping, conflict rule, routing, pickling.

The contract under test (DESIGN.md "Transactional repair protocol",
determinism rule 7): a :class:`~repro.core.RepairTransaction` snapshots the
suite, groups the round's error issues by ``(subject, ErrorCode)`` in
subject interning order, and commits repaired fragments atomically — the
lowest-indexed item touching a declaration wins it, losers re-queue.  The
transactional repair mode must reach the same valid-or-exhausted outcome as
the per-query loop while paying one LLM round-trip per round instead of one
per broken declaration.
"""

import pickle

import pytest

from repro.core import KernelGPT, RepairTransaction
from repro.llm import BackendPool, DegradedBackend, OracleBackend
from repro.syzlang import ConstantTable, ErrorCode, parse_suite, validate_suite

CONSTS = ConstantTable({"GOOD_CMD": 0x1234, "OTHER_CMD": 0x1235})

#: A suite whose single syscall carries two error classes (unknown constant
#: and undefined type) plus a second independently broken syscall.
TWO_CODE_SUITE = '''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$T(fd fd_x, cmd const[NOT_A_MACRO, int32], arg ptr[in, missing_struct])
ioctl$U(fd fd_x, cmd const[ALSO_BAD, int32], arg const[0, int64])
'''


def _transaction(text):
    suite = parse_suite(text)
    report = validate_suite(suite, CONSTS)
    return suite, report, RepairTransaction(suite, report)


# ---------------------------------------------------------------- grouping
def test_items_group_by_subject_and_code_in_interning_order():
    suite, report, txn = _transaction(TWO_CODE_SUITE)
    keys = [(item.subject, item.code) for item in txn.items]
    assert keys == [
        ("ioctl$T", ErrorCode.UNKNOWN_CONSTANT),
        ("ioctl$T", ErrorCode.UNDEFINED_TYPE),
        ("ioctl$U", ErrorCode.UNKNOWN_CONSTANT),
    ]
    assert [item.index for item in txn.items] == [0, 1, 2]
    # The snapshot is a copy: mutating the live suite does not change it.
    suite.remove_syscall("ioctl$U")
    assert "ioctl$U" in txn.snapshot.syscalls


def test_multi_issue_items_carry_every_issue_of_the_class():
    _, report, txn = _transaction('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$T(fd fd_x, cmd const[BAD_ONE, int32], arg ptr[in, s])
s {
\ta const[BAD_TWO, int32]
\tb const[BAD_THREE, int32]
}
''')
    struct_items = [item for item in txn.items if item.subject == "s"]
    assert len(struct_items) == 1
    assert len(struct_items[0].issues) == 2
    assert "BAD_TWO" in struct_items[0].render_errors()
    assert "BAD_THREE" in struct_items[0].render_errors()


def test_warnings_never_form_items():
    _, report, txn = _transaction('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], flags const[O_RDWR, int32]) fd_x
ioctl$T(fd fd_x, cmd const[NOT_A_MACRO, int32], arg const[0, int64])
''')
    # openat$x draws a missing-filename *warning*; only the error subject
    # becomes an item.
    assert report.warnings
    assert [item.subject for item in txn.items] == ["ioctl$T"]


# ------------------------------------------------------------ conflict rule
def test_overlapping_subject_items_lower_index_wins():
    """Two items on one subject: the first commits, the loser re-queues."""
    suite, report, txn = _transaction(TWO_CODE_SUITE)
    fragments = [
        "ioctl$T(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, missing_struct])",
        "ioctl$T(fd fd_x, cmd const[NOT_A_MACRO, int32], arg ptr[in, missing_struct])\n\n"
        "missing_struct {\n\tdata array[int8, 8]\n}",
        "",
    ]
    commit = txn.commit(fragments, suite, apply=KernelGPT._apply_repair)
    assert [item.index for item in commit.applied] == [0]
    assert [item.index for item in commit.conflicts] == [1]
    assert commit.requeued == txn.items[1].issues
    assert [item.index for item in commit.empty] == [2]
    assert commit.changed
    # The winner's fragment is in the suite; the loser's struct is not.
    assert "GOOD_CMD" in suite.syscalls["ioctl$T"].render()
    assert suite.get_type_def("missing_struct") is None
    # Re-queue resolves through re-validation: the loser's error class is
    # still reported against the committed suite, queued for round two.
    after = validate_suite(suite, CONSTS)
    assert ErrorCode.UNDEFINED_TYPE in {issue.code for issue in after.issues_for("ioctl$T")}


def test_rename_collision_between_subjects_is_a_conflict():
    """Two repairs emitting the same renamed declaration: first one wins."""
    suite, report, txn = _transaction(TWO_CODE_SUITE)
    renamed = "ioctl$GOOD_CMD(fd fd_x, cmd const[GOOD_CMD, int32], arg const[0, int64])"
    fragments = ["", "", ""]
    t_index = next(i for i, item in enumerate(txn.items)
                   if (item.subject, item.code) == ("ioctl$T", ErrorCode.UNKNOWN_CONSTANT))
    u_index = next(i for i, item in enumerate(txn.items) if item.subject == "ioctl$U")
    fragments[t_index] = renamed
    fragments[u_index] = renamed
    commit = txn.commit(fragments, suite, apply=KernelGPT._apply_repair)
    assert [item.subject for item in commit.applied] == ["ioctl$T"]
    assert [item.subject for item in commit.conflicts] == ["ioctl$U"]
    # The rename resolved through _apply_repair's subject matching: the
    # winner's original declaration is gone, the loser's is untouched.
    assert "ioctl$T" not in suite.syscalls
    assert "ioctl$GOOD_CMD" in suite.syscalls
    assert "ioctl$U" in suite.syscalls


def test_flags_definitions_apply_and_count_as_touched():
    """A fragment's flag-set definition is applied and claimed by rule 7."""
    suite, report, txn = _transaction(TWO_CODE_SUITE)
    with_flags = (
        "ioctl$T(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, missing_struct])\n"
        "shared_flags = GOOD_CMD, OTHER_CMD"
    )
    also_flags = (
        "ioctl$U(fd fd_x, cmd const[OTHER_CMD, int32], arg const[0, int64])\n"
        "shared_flags = GOOD_CMD"
    )
    fragments = [with_flags, "", also_flags]
    commit = txn.commit(fragments, suite, apply=KernelGPT._apply_repair)
    # The second fragment loses the shared flag-set declaration to the first.
    assert [item.subject for item in commit.applied] == ["ioctl$T"]
    assert [item.subject for item in commit.conflicts] == ["ioctl$U"]
    assert "shared_flags" in commit.touched
    assert suite.flags["shared_flags"].values == ("GOOD_CMD", "OTHER_CMD")


def test_unparsable_fragment_is_skipped_without_claiming_declarations():
    suite, report, txn = _transaction(TWO_CODE_SUITE)
    fragments = ["this is not syzlang ((((", "", ""]
    commit = txn.commit(fragments, suite, apply=KernelGPT._apply_repair)
    assert [item.index for item in commit.unparsed] == [0]
    assert not commit.changed
    assert not commit.touched


def test_commit_requires_one_fragment_per_item():
    suite, _, txn = _transaction(TWO_CODE_SUITE)
    with pytest.raises(ValueError):
        txn.commit(["only one"], suite, apply=KernelGPT._apply_repair)


# ---------------------------------------------------------------- pickling
def test_transaction_pickles_across_process_shards():
    """Transactions are plain data: snapshot, items and issues survive pickle."""
    suite, report, txn = _transaction(TWO_CODE_SUITE)
    clone = pickle.loads(pickle.dumps(txn))
    assert [(item.subject, item.code, item.issues) for item in clone.items] == \
           [(item.subject, item.code, item.issues) for item in txn.items]
    assert clone.snapshot.syscall_names() == txn.snapshot.syscall_names()
    # A commit on the unpickled transaction behaves identically.
    fragment = "ioctl$T(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, missing_struct])"
    target = parse_suite(TWO_CODE_SUITE)
    commit = clone.commit([fragment, "", ""], target, apply=KernelGPT._apply_repair)
    assert [item.index for item in commit.applied] == [0]
    assert "GOOD_CMD" in target.syscalls["ioctl$T"].render()


# ----------------------------------------------------------- end to end
@pytest.fixture(scope="module")
def repair_heavy_runs(small_kernel, extractor):
    """Per-query and transactional runs of an error-prone analyst."""

    def build(mode):
        backend = DegradedBackend.gpt4(
            bad_constant_rate=0.9, undefined_type_rate=0.5, unrepairable_rate=0.0
        )
        return KernelGPT(small_kernel, backend, extractor=extractor, repair_mode=mode)

    handlers = ["dm_ctl_fops", "cec_devnode_fops", "rds_proto_ops", "kvm_fops", "snapshot_fops"]
    per_query = {h: build("per-query").generate_for_handler(h) for h in handlers}
    transactional = {h: build("transactional").generate_for_handler(h) for h in handlers}
    return per_query, transactional


def test_transactional_reaches_per_query_validity(repair_heavy_runs):
    """Equivalence oracle: same valid-or-exhausted outcome, same repaired flags."""
    per_query, transactional = repair_heavy_runs
    for handler, pq in per_query.items():
        tx = transactional[handler]
        assert (tx.valid, tx.repaired) == (pq.valid, pq.repaired), handler
        assert tx.repair_mode == "transactional" and pq.repair_mode == "per-query"


def test_transactional_saves_llm_round_trips(repair_heavy_runs):
    """One batch per round beats one round-trip per declaration, >=2x here."""
    per_query, transactional = repair_heavy_runs
    pq_calls = sum(result.repair_llm_calls for result in per_query.values())
    tx_calls = sum(result.repair_llm_calls for result in transactional.values())
    assert tx_calls > 0
    assert pq_calls >= 2 * tx_calls, (pq_calls, tx_calls)
    # Transactional rounds equal their LLM calls by construction.
    for result in transactional.values():
        assert result.repair_llm_calls == result.repair_rounds_used or not result.repair_queries


def test_requeued_losers_converge_on_later_rounds(repair_heavy_runs):
    """Conflicts happen on this corpus and their handlers still repair."""
    per_query, transactional = repair_heavy_runs
    conflicted = [r for r in transactional.values() if r.repair_conflicts]
    assert conflicted, "expected at least one conflicted round on the error-prone corpus"
    for result in conflicted:
        assert result.repair_requeued >= result.repair_conflicts
        assert result.valid == per_query[result.handler_name].valid


# ------------------------------------------------------------- kind routing
def test_repair_prompts_route_to_cheap_profile_member(small_kernel, extractor):
    """A kind-route table steers the repair stage to its member, with
    per-kind usage attributed in the pool's per-member summaries."""
    pool = BackendPool(
        {"gpt-4": OracleBackend(), "cheap": DegradedBackend.gpt4(unrepairable_rate=0.0)},
        default="gpt-4",
        routes={"repair": "cheap"},
    )
    generator = KernelGPT(
        small_kernel, pool, extractor=extractor, repair_mode="transactional"
    )
    result = generator.generate_for_handler("cec_devnode_fops")
    assert result.repair_queries > 0
    by_member = pool.usage_by_member()
    assert set(by_member["cheap"]["by_kind"]) == {"repair"}
    assert "repair" not in by_member["gpt-4"]["by_kind"]
    assert by_member["cheap"]["queries"] == by_member["cheap"]["by_kind"]["repair"]["queries"]
