"""Validator and corpus accounting tests."""

from repro.syzlang import (
    ConstantTable, ErrorCode, SpecCorpus, parse_suite, validate_suite,
    missing_specs_report,
)

CONSTS = ConstantTable({"GOOD_CMD": 0x1234, "FLAG_A": 1, "FLAG_B": 2})


def _validate(text):
    return validate_suite(parse_suite(text), CONSTS)


def test_valid_minimal_suite():
    report = _validate('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$GOOD(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, array[int8]])
''')
    assert report.is_valid


def test_unknown_constant_detected():
    report = _validate('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$BAD(fd fd_x, cmd const[NOT_A_MACRO, int32], arg const[0, int64])
''')
    assert not report.is_valid
    assert ErrorCode.UNKNOWN_CONSTANT in {i.code for i in report.errors}


def test_undefined_type_detected():
    report = _validate('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$T(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, missing_struct])
''')
    assert ErrorCode.UNDEFINED_TYPE in {i.code for i in report.errors}


def test_unmatched_resource_detected():
    report = _validate('''
resource fd_x[fd]
ioctl$T(fd fd_x, cmd const[GOOD_CMD, int32], arg const[0, int64])
''')
    assert ErrorCode.UNMATCHED_RESOURCE in {i.code for i in report.errors}


def test_out_param_resource_counts_as_produced():
    report = _validate('''
resource fd_x[fd]
resource q_id[int32]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$NEW(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[inout, q_args])
ioctl$CLOSE(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, q_id])
q_args {
\tid q_id (out)
}
''')
    assert report.is_valid, report.render()


def test_bad_len_target_detected():
    report = _validate('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$T(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, s])
s {
\tcount len[nonexistent, int32]
\tdata array[int8, 4]
}
''')
    assert ErrorCode.BAD_LEN_TARGET in {i.code for i in report.errors}


def test_recursive_type_detected():
    report = _validate('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$T(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, node])
node {
\tnext node
}
''')
    assert ErrorCode.RECURSIVE_TYPE in {i.code for i in report.errors}


def test_subjects_with_errors_follows_declaration_order():
    """Ordering is public API: declaration order, not alphabetical, no sets.

    The suite below declares its broken syscalls in deliberately
    anti-alphabetical order (zz before mm before aa); the report must hand
    subjects back in declaration order — the interning order the repair
    stage's deterministic conflict rule (rule 7) is built on — under any
    PYTHONHASHSEED.
    """
    report = _validate('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$ZZ(fd fd_x, cmd const[NOT_A_MACRO, int32], arg const[0, int64])
ioctl$MM(fd fd_x, cmd const[GOOD_CMD, int32], arg ptr[in, missing_struct])
ioctl$AA(fd fd_x, cmd const[ALSO_NOT_A_MACRO, int32], arg const[0, int64])
''')
    assert report.subjects_with_errors() == ("ioctl$ZZ", "ioctl$MM", "ioctl$AA")


def test_issues_for_preserves_report_order():
    """A subject's issues come back in report (declaration) order."""
    report = _validate('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$T(fd fd_x, cmd const[NOT_A_MACRO, int32], arg ptr[in, missing_struct])
''')
    codes = [issue.code for issue in report.issues_for("ioctl$T")]
    assert codes == [ErrorCode.UNKNOWN_CONSTANT, ErrorCode.UNDEFINED_TYPE]
    assert [issue.code for issue in report.issues_for("ioctl$T")] == codes  # stable


def test_subject_order_is_first_error_appearance_across_kinds():
    """Struct subjects intern after syscall subjects, in struct order."""
    report = _validate('''
resource fd_x[fd]
openat$x(fd const[AT_FDCWD, int64], file ptr[in, string["/dev/x"]], flags const[O_RDWR, int32]) fd_x
ioctl$T(fd fd_x, cmd const[NOT_A_MACRO, int32], arg ptr[in, zebra])
zebra {
\tcount len[nonexistent, int32]
}
alpha {
\tvalue const[ANOTHER_BAD, int32]
}
''')
    subjects = report.subjects_with_errors()
    assert subjects[0] == "ioctl$T"
    # zebra declared before alpha: declaration order, not alphabetical.
    assert subjects.index("zebra") < subjects.index("alpha")


def test_missing_specs_report_histogram():
    ground_truth = {
        "h1": ("driver", ("openat", "ioctl$A", "ioctl$B")),
        "h2": ("driver", ("openat", "ioctl$C")),
        "h3": ("socket", ("socket", "sendto")),
    }
    described = {"h1": ["openat", "ioctl$A"], "h3": []}
    report = missing_specs_report("test", ground_truth, described)
    assert len(report.incomplete("driver")) == 2
    assert len(report.undescribed("driver")) == 1
    hist = report.histogram("driver", bins=10)
    assert sum(hist) == 2


def test_corpus_merge_and_flatten():
    corpus_a = SpecCorpus("a")
    corpus_a.add("h1", parse_suite('resource fd_a[fd]\nopenat$a(file ptr[in, string["/dev/a"]]) fd_a'))
    corpus_b = SpecCorpus("b")
    corpus_b.add("h2", parse_suite('resource fd_b[fd]\nopenat$b(file ptr[in, string["/dev/b"]]) fd_b'))
    merged = corpus_a.merge_corpus(corpus_b)
    assert len(merged) == 2
    flat = merged.flatten()
    assert set(flat.syscall_names()) == {"openat$a", "openat$b"}
