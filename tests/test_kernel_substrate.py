"""Tests for the synthetic kernel substrate."""

from hypothesis import given, settings, strategies as st

from repro.kernel import (
    DispatchStyle, DriverProfile, RegistrationStyle, build_driver_source,
    driver_constants, ioc, ioc_nr, make_driver, reference_suite_for_driver,
)
from repro.syzlang import validate_suite, ConstantTable


def test_ioc_encoding_round_trip():
    value = ioc("inout", 0xAE, 5, 0x40)
    assert ioc_nr(value) == 5
    assert (value >> 8) & 0xFF == 0xAE


def test_small_kernel_scan_counts(small_kernel):
    stats = small_kernel.stats()
    assert stats["drivers"] >= 35
    assert stats["sockets"] == 10
    assert stats["bugs"] == 24


def test_device_resolution_numbered_nodes(small_kernel):
    loop = small_kernel.resolve_device("/dev/loop3")
    assert loop is not None and loop.name == "loop#"
    assert small_kernel.resolve_device("/dev/definitely-not-there") is None


def test_socket_resolution(small_kernel):
    rds = small_kernel.socket("rds")
    resolved = small_kernel.resolve_socket(rds.family_value, rds.sock_type, rds.protocol)
    assert resolved is not None and resolved.name == "rds"


def test_reference_suites_validate(small_kernel):
    for name in ("device-mapper", "kvm", "cec", "rds", "mptcp"):
        report = validate_suite(small_kernel.reference_suite(name), small_kernel.constants)
        assert report.is_valid, f"{name}: {report.render()}"


def test_dm_ground_truth_matches_paper_example(small_kernel):
    dm = small_kernel.driver("device-mapper")
    assert dm.device_path == "/dev/mapper/control"
    assert dm.registration is RegistrationStyle.MISC_NODENAME
    assert dm.op_by_macro("DM_LIST_DEVICES") is not None
    source = small_kernel.source_text_for("dm_ctl_fops")
    assert '.nodename = "mapper/control"' in source
    assert "_IOC_NR" in source


def test_kvm_secondary_handlers(small_kernel):
    kvm = small_kernel.driver("kvm")
    resources = {handler.resource for handler in kvm.secondary_handlers}
    assert resources == {"kvm_vm", "kvm_vcpu"}
    producers = [op.macro for op in kvm.all_ops() if op.produces]
    assert "KVM_CREATE_VM" in producers


def test_bug_sites_attached(small_kernel):
    dm = small_kernel.driver("device-mapper")
    bug_ops = [op for op in dm.ops if op.bug is not None]
    assert len(bug_ops) == 3
    assert {op.bug.bug_id for op in bug_ops} >= {"dm-kmalloc-ctl-ioctl"}


def test_fuzz_config_excludes_gated_handlers(small_kernel):
    config = small_kernel.fuzz_config()
    assert config.loads(config_option="CONFIG_X", hardware_gated=True, debug_only=False) is False


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.sampled_from(list(DispatchStyle)), st.sampled_from(list(RegistrationStyle)))
def test_property_factory_is_deterministic_and_consistent(num_ops, dispatch, registration):
    """Any profile expands to consistent source/constants/reference artifacts."""
    profile = DriverProfile(
        name=f"prop{num_ops}", device_path=f"/dev/prop{num_ops}",
        registration=registration, dispatch=dispatch, num_ops=num_ops,
    )
    first = make_driver(profile)
    second = make_driver(profile)
    assert [op.macro for op in first.ops] == [op.macro for op in second.ops]
    assert len(first.ops) == num_ops
    constants = driver_constants(first)
    assert all(op.macro in constants for op in first.ops)
    reference = reference_suite_for_driver(first)
    assert validate_suite(reference, ConstantTable(constants)).is_valid
    source = build_driver_source(first).render()
    for op in first.ops:
        assert op.macro in source
