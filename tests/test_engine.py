"""The execution engine: determinism, caching, scheduling, instrumentation.

The contract under test is the one the parallel refactor rests on: any
``jobs`` level produces byte-identical generation suites, identical campaign
coverage/crash sets, and schedule-independent cache accounting.
"""

import threading

import pytest

from repro.core import KernelGPT
from repro.engine import (
    ExecutionEngine,
    GlobalWorkerBudget,
    MemoCache,
    ProcessPoolExecutor,
    SerialExecutor,
    TaskSpec,
    ThreadPoolExecutor,
    create_executor,
    derive_seed,
    get_global_worker_budget,
    set_global_worker_budget,
)
from repro.fuzzer import (
    merge_campaigns,
    run_campaign_matrix,
    run_repeated_campaigns,
)
from repro.llm import OracleBackend

#: A determinism-sensitive handler mix: secondary-handler chains (kvm, whose
#: VM/VCPU handlers are also generated standalone, so sessions share prompts),
#: repairable error injection (cec), sockets, and a plain driver.
HANDLERS = [
    "kvm_fops",
    "kvm_vm_fops",
    "kvm_vcpu_fops",
    "dm_ctl_fops",
    "cec_devnode_fops",
    "rds_proto_ops",
    "udmabuf_fops",
]


# --------------------------------------------------------------------- tasks
def test_derive_seed_is_stable_and_distinct():
    assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)
    assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
    assert derive_seed(7, "a") != derive_seed(8, "a")
    assert 0 <= derive_seed(2025, "table5", "kvm") < 2**31


def test_executors_preserve_submission_order():
    tasks = [TaskSpec(key=str(i), fn=lambda i=i: i * i) for i in range(20)]
    for executor in (SerialExecutor(), ThreadPoolExecutor(4)):
        results = executor.run(tasks)
        assert [r.key for r in results] == [str(i) for i in range(20)]
        assert [r.value for r in results] == [i * i for i in range(20)]


def test_executor_captures_errors_without_aborting_siblings():
    def boom():
        raise ValueError("boom")

    tasks = [TaskSpec(key="ok", fn=lambda: 1), TaskSpec(key="bad", fn=boom)]
    results = ThreadPoolExecutor(2).run(tasks)
    assert results[0].ok and results[0].value == 1
    assert not results[1].ok and isinstance(results[1].error, ValueError)

    engine = ExecutionEngine(jobs=2)
    with pytest.raises(ValueError):
        engine.run_tasks("batch", tasks)
    kept = engine.run_tasks("batch", tasks, rethrow=False)
    assert [r.ok for r in kept] == [True, False]


def test_create_executor_kinds():
    assert create_executor(1).name == "serial"
    # cap_to_cpus=False sidesteps the worker budget so the test is
    # independent of how many cores the CI box happens to have.
    assert create_executor(4, cap_to_cpus=False).name == "thread"
    assert create_executor(4, "process", cap_to_cpus=False).name == "process"
    assert create_executor(4, cap_to_cpus=True).jobs <= max(4, 1)
    with pytest.raises(ValueError):
        create_executor(4, "quantum")


def test_executor_memory_sharing_flags():
    assert SerialExecutor().shares_memory
    assert ThreadPoolExecutor(2).shares_memory
    assert not ProcessPoolExecutor(2).shares_memory
    assert ExecutionEngine(jobs=2, executor=ProcessPoolExecutor(2)).shares_memory is False


# -------------------------------------------------------------------- budget
def test_worker_budget_leases_and_releases():
    budget = GlobalWorkerBudget(limit=4)
    assert budget.lease(3) == 3
    assert budget.lease(3) == 1          # only 1 slot left
    # Exhausted budgets still grant one worker: nested pools must always be
    # able to make progress (deadlock-freedom beats strict capping).
    assert budget.lease(2) == 1
    assert budget.leased == 5
    budget.release(5)
    assert budget.leased == 0
    assert budget.stats()["peak"] == 5


def test_worker_budget_caps_pool_size():
    budget = GlobalWorkerBudget(limit=2)
    observed = []

    def probe(i):
        observed.append(threading.current_thread().name)
        return i

    pool = ThreadPoolExecutor(8, budget=budget)
    results = pool.run([TaskSpec(key=str(i), fn=probe, args=(i,)) for i in range(16)])
    assert [r.value for r in results] == list(range(16))
    assert len(set(observed)) <= 2        # pool leased at most 2 workers
    assert budget.leased == 0             # fully released after the batch


def test_worker_budget_is_shared_across_nested_pools():
    budget = GlobalWorkerBudget(limit=3)

    def inner_batch(i):
        inner = ThreadPoolExecutor(4, budget=budget)
        inner_results = inner.run([TaskSpec(key=f"{i}.{j}", fn=lambda j=j: j) for j in range(4)])
        return [r.value for r in inner_results]

    outer = ThreadPoolExecutor(3, budget=budget)
    results = outer.run([TaskSpec(key=str(i), fn=inner_batch, args=(i,)) for i in range(3)])
    assert [r.value for r in results] == [[0, 1, 2, 3]] * 3
    assert budget.leased == 0
    # Outer leased up to 3; each inner pool could only add its deadlock-
    # freedom minimum of one, so the peak stays bounded by limit + nesting.
    assert budget.peak <= 3 + 3


def test_default_budget_swap_roundtrip():
    original = get_global_worker_budget()
    replacement = GlobalWorkerBudget(limit=2)
    assert set_global_worker_budget(replacement) is original
    try:
        assert get_global_worker_budget() is replacement
    finally:
        set_global_worker_budget(original)


# ------------------------------------------------------------------ pickling
def test_generator_and_backends_are_picklable(small_kernel, extractor):
    import pickle

    from repro.llm import RecordingBackend, ReplayBackend

    engine = ExecutionEngine(jobs=2)
    generator = KernelGPT(small_kernel, OracleBackend(), extractor=extractor, engine=engine)
    clone = pickle.loads(pickle.dumps(generator))
    assert clone.engine is None           # engines never cross process bounds
    assert clone.backend.usage.queries == 0

    recording = RecordingBackend(ReplayBackend(default="## UNKNOWN\n(none)\n"))
    restored = pickle.loads(pickle.dumps(recording))
    from repro.llm import Prompt

    completion = restored.query(Prompt(kind="identifier", subject="s", text="t"))
    assert "(none)" in completion.text
    assert len(restored.exchanges) == 1


class CountingGenerator(KernelGPT):
    """A generator that counts how often it is pickled (module-level so
    process-pool workers can unpickle it by qualified name)."""

    pickles = 0

    def __getstate__(self):
        CountingGenerator.pickles += 1
        return super().__getstate__()


def test_process_pool_ships_generator_once_per_worker(small_kernel, extractor):
    """The batch payload pickles per *worker* (pool initializer), not per task.

    Task args carry only the ``POOL_PAYLOAD`` sentinel; the generator rides
    in the pool initializer's ``initargs``, which the spawn start method
    pickles once per worker process and the fork start method (Linux
    default) ships for free through inherited memory — either way, strictly
    fewer pickles than the one-per-task the args used to cost.
    """
    generator = CountingGenerator(small_kernel, OracleBackend(), extractor=extractor)
    engine = ExecutionEngine(jobs=2, executor=ProcessPoolExecutor(2))
    CountingGenerator.pickles = 0
    handlers = ["dm_ctl_fops", "cec_devnode_fops", "rds_proto_ops", "udmabuf_fops"]
    run = generator.generate_for_handlers(handlers, engine=engine)
    assert set(run.results) == set(handlers)
    assert CountingGenerator.pickles <= 2             # at most once per worker
    assert CountingGenerator.pickles < len(handlers)  # never once per task


def test_shared_payload_passes_by_reference_in_memory(small_kernel, extractor):
    """In-memory executors substitute the payload object itself, no pickling."""
    generator = CountingGenerator(small_kernel, OracleBackend(), extractor=extractor)
    engine = ExecutionEngine(jobs=2)
    CountingGenerator.pickles = 0
    run = generator.generate_for_handlers(["dm_ctl_fops", "udmabuf_fops"], engine=engine)
    assert set(run.results) == {"dm_ctl_fops", "udmabuf_fops"}
    assert CountingGenerator.pickles == 0


def test_worker_budget_reclaims_blocked_parent_slot():
    """Nested fan-out stays at exactly ``limit`` concurrent workers.

    Each outer worker donates the slot it holds while it blocks on its
    nested pool, so the inner pools run inside the original budget instead
    of stacking the deadlock-freedom minimum on top (previously: peak =
    limit + one per nesting level).
    """
    budget = GlobalWorkerBudget(limit=2)
    outer_gate = threading.Barrier(2, timeout=10)
    inner_gate = threading.Barrier(2, timeout=10)

    def inner_task(i):
        inner_gate.wait()   # both nested pools provably run concurrently
        return i

    def outer_task(i):
        outer_gate.wait()   # both outer workers provably hold slots at once
        inner = ThreadPoolExecutor(2, budget=budget)
        results = inner.run([TaskSpec(key=f"{i}.0", fn=inner_task, args=(i,))])
        return results[0].value

    outer = ThreadPoolExecutor(2, budget=budget)
    results = outer.run([TaskSpec(key=str(i), fn=outer_task, args=(i,)) for i in range(2)])
    assert [r.value for r in results] == [0, 1]
    assert budget.leased == 0
    # Without donation the peak would be 4: 2 outer + the at-least-one
    # grant each nested pool extracts from an exhausted budget.
    assert budget.peak == 2


def test_budget_reclaim_is_noop_for_top_level_callers():
    budget = GlobalWorkerBudget(limit=2)
    with budget.reclaimed_for_nested():
        assert budget.leased == 0         # nothing to donate, nothing lost
    pool = ThreadPoolExecutor(2, budget=budget)
    results = pool.run([TaskSpec(key=str(i), fn=lambda i=i: i) for i in range(4)])
    assert [r.value for r in results] == list(range(4))
    assert budget.leased == 0 and budget.peak == 2


# --------------------------------------------------------------------- cache
def test_memo_cache_hit_miss_accounting():
    cache = MemoCache("t")
    calls = []
    for _ in range(3):
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
    assert len(calls) == 1
    assert cache.stats.misses == 1 and cache.stats.hits == 2
    assert cache.stats.calls == 3 and cache.stats.hit_rate == pytest.approx(2 / 3)
    assert "k" in cache and len(cache) == 1


def test_memo_cache_single_flight_under_concurrency():
    cache = MemoCache("t")
    computed = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        return cache.get_or_compute("key", lambda: computed.append(1) or "value")

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert computed == [1]          # exactly one compute, whatever the schedule
    assert cache.stats.misses == 1 and cache.stats.hits == 7


def test_memo_cache_error_does_not_poison_key():
    cache = MemoCache("t")

    def fail():
        raise RuntimeError("transient")

    with pytest.raises(RuntimeError):
        cache.get_or_compute("k", fail)
    assert cache.stats.errors == 1 and cache.stats.misses == 0
    assert cache.get_or_compute("k", lambda: 7) == 7
    assert cache.stats.misses == 1


def test_query_budget_is_exact_under_concurrency():
    from repro.errors import LLMBudgetExceeded
    from repro.llm import Prompt

    backend = OracleBackend(query_budget=10)
    prompt = Prompt(kind="identifier", subject="x", text="## REGISTRATION\n\n")
    errors = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        for _ in range(4):
            try:
                backend.query(prompt)
            except LLMBudgetExceeded:
                errors.append(1)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Budget slots are reserved atomically: exactly 10 queries recorded,
    # every other attempt rejected — same as a serial schedule.
    assert backend.usage.queries == 10
    assert len(errors) == 8 * 4 - 10


# --------------------------------------------------- generation determinism
def _suites_and_queries(run):
    return (
        {h: r.suite_text() for h, r in run.results.items()},
        {h: r.queries for h, r in run.results.items()},
    )


def test_parallel_generation_matches_serial(small_kernel, extractor):
    serial = KernelGPT(small_kernel, OracleBackend(), extractor=extractor)
    serial_run = serial.generate_for_handlers(HANDLERS)

    # The explicit pool forces true thread concurrency even on a 1-core host
    # (where the default policy would clamp jobs=4 down to the serial path).
    engine = ExecutionEngine(jobs=4, executor=ThreadPoolExecutor(4))
    parallel = KernelGPT(small_kernel, OracleBackend(), extractor=extractor, engine=engine)
    parallel_run = parallel.generate_for_handlers(HANDLERS, engine=engine)

    s_texts, s_queries = _suites_and_queries(serial_run)
    p_texts, p_queries = _suites_and_queries(parallel_run)
    assert list(p_texts) == list(s_texts)      # handler order preserved
    assert p_texts == s_texts                  # byte-identical suites
    assert p_queries == s_queries              # session-level query attribution


def test_generation_cache_accounting_is_schedule_independent(small_kernel, extractor):
    engine = ExecutionEngine(jobs=4, executor=ThreadPoolExecutor(4))
    generator = KernelGPT(small_kernel, OracleBackend(), extractor=extractor, engine=engine)
    run = generator.generate_for_handlers(HANDLERS, engine=engine)
    assert run.results

    llm = engine.llm_cache.stats
    # Single-flight: the backend records exactly one query per distinct prompt.
    assert generator.backend.usage.queries == llm.misses
    # Every session-issued query went through the cache.
    assert sum(r.queries for r in run.results.values()) == llm.calls
    # The handler mix shares prompts: kvm's secondary-handler analysis issues
    # the same prompts as the standalone kvm_vm/vcpu sessions.
    assert llm.hits > 0
    assert engine.extract_cache.stats.hits > 0

    # Regenerating a handler is pure cache traffic: no new backend queries.
    misses_before = llm.misses
    repeat = generator.generate_for_handler(HANDLERS[0])
    assert repeat.queries == run.results[HANDLERS[0]].queries
    assert llm.misses == misses_before


def test_fanout_engine_reaches_sessions_on_engineless_generator(small_kernel, extractor):
    """jobs=N on a generator built without an engine must still memoize.

    The fan-out engine is threaded into each session, so the single-flight
    LLM cache applies (one backend query per distinct prompt) even though
    generator.engine is None.
    """
    backend = OracleBackend()
    generator = KernelGPT(small_kernel, backend, extractor=extractor)
    engine = ExecutionEngine(jobs=4, executor=ThreadPoolExecutor(4))
    run = generator.generate_for_handlers(HANDLERS, engine=engine)
    assert run.results
    assert engine.llm_cache.stats.calls > 0
    assert backend.usage.queries == engine.llm_cache.stats.misses
    assert engine.extract_cache.stats.calls > 0


def test_engine_profile_records_generation_stages(small_kernel, extractor):
    engine = ExecutionEngine(jobs=2, executor=ThreadPoolExecutor(2))
    generator = KernelGPT(small_kernel, OracleBackend(), extractor=extractor, engine=engine)
    generator.generate_for_handlers(HANDLERS[:2], engine=engine)
    report = engine.profile.report()
    for stage in ("generation", "generation/identifier", "generation/type", "generation/repair"):
        assert stage in report and report[stage]["total_seconds"] >= 0.0
    assert report["generation/identifier"]["calls"] >= 2
    assert "generation" in engine.profile.render()


# ----------------------------------------------------- campaign determinism
@pytest.fixture(scope="module")
def campaign_suite(small_kernel, syzkaller_corpus):
    return syzkaller_corpus.flatten("syzkaller")


def test_parallel_campaigns_match_serial(small_kernel, campaign_suite):
    serial = run_repeated_campaigns(
        small_kernel, campaign_suite, repetitions=3, budget_programs=150, base_seed=11
    )
    parallel = run_repeated_campaigns(
        small_kernel, campaign_suite, repetitions=3, budget_programs=150, base_seed=11,
        engine=ExecutionEngine(jobs=3, executor=ThreadPoolExecutor(3)),
    )
    assert [c.seed for c in parallel] == [c.seed for c in serial]
    for serial_campaign, parallel_campaign in zip(serial, parallel):
        assert parallel_campaign.coverage == serial_campaign.coverage
        assert parallel_campaign.crash_log.bug_ids() == serial_campaign.crash_log.bug_ids()
        assert parallel_campaign.executed_programs == serial_campaign.executed_programs


def test_campaign_matrix_matches_per_suite_runs(small_kernel, syzkaller_corpus, campaign_suite):
    suites = {"all": campaign_suite, "fuse": syzkaller_corpus.get("fuse_fops")}
    matrix = run_campaign_matrix(
        small_kernel, suites, repetitions=2, budget_programs=100, base_seed=5,
        engine=ExecutionEngine(jobs=4, executor=ThreadPoolExecutor(4)),
    )
    assert set(matrix) == {"all", "fuse"}
    for label, suite in suites.items():
        expected = run_repeated_campaigns(
            small_kernel, suite, repetitions=2, budget_programs=100, base_seed=5
        )
        assert [c.coverage for c in matrix[label]] == [c.coverage for c in expected]
        assert [c.unique_crashes for c in matrix[label]] == [c.unique_crashes for c in expected]


def test_merge_campaigns_aggregates(small_kernel, campaign_suite):
    campaigns = run_repeated_campaigns(
        small_kernel, campaign_suite, repetitions=2, budget_programs=100, base_seed=3
    )
    merged = merge_campaigns(campaigns)
    assert merged.coverage == campaigns[0].coverage | campaigns[1].coverage
    assert merged.executed_programs == sum(c.executed_programs for c in campaigns)
    assert set(merged.crash_log.bug_ids()) == set(
        campaigns[0].crash_log.bug_ids() + campaigns[1].crash_log.bug_ids()
    )
