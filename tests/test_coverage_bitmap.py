"""Coverage bitmaps: interning stability, set algebra, legacy equivalence.

Three contracts:

* **Interning stability** — a :class:`CoverageSpace` assigns indices in
  codebase construction order, so two identically-built kernels produce the
  same label ↔ index mapping and digest (the invariant that lets bitmaps
  cross process boundaries as plain integers).
* **Set algebra** — :class:`CoverageBitmap` union/difference/equality over
  empty, disjoint and superset operands, including the overflow label set
  and pickling by digest.
* **Legacy equivalence** — for every suite of the determinism matrix, a
  bitmap campaign's ``labels()`` (and crashes, corpus growth, call counts)
  equal the string-set reference implementation preserved verbatim in
  ``repro.fuzzer.reference`` — which also generates through the pre-plan
  ladder generator, so the compiled value plans are pinned to the exact
  legacy rng call sequence.
"""

import pickle

import pytest

from repro.errors import CoverageSpaceMismatch
from repro.fuzzer import Call, Fuzzer, KernelExecutor, Program, ResourceValue, run_campaign
from repro.fuzzer.reference import run_reference_campaign
from repro.kconfig import CONFIG_PRESETS, prune_coverage_space
from repro.kernel import (
    CoverageBitmap,
    CoverageSpace,
    allyesconfig,
    build_default_kernel,
    enumerate_kernel_labels,
)

#: Matches tests/test_determinism_matrix.py: a repair-heavy driver, a
#: delegating driver, a socket handler and a plain driver.
MATRIX_HANDLERS = ["dm_ctl_fops", "cec_devnode_fops", "rds_proto_ops", "udmabuf_fops"]


@pytest.fixture(scope="module")
def space(small_kernel):
    return small_kernel.coverage_space()


# ------------------------------------------------------- interning stability
def test_space_indices_follow_construction_order(small_kernel, space):
    labels = list(dict.fromkeys(enumerate_kernel_labels(small_kernel)))
    assert [space.label_of(index) for index in range(len(space))] == labels
    assert [space.index_of(label) for label in labels] == list(range(len(space)))


def test_space_is_stable_across_identical_builds(small_kernel, space):
    rebuilt = build_default_kernel("small")
    other = CoverageSpace.for_kernel(rebuilt)
    assert other is not space                      # distinct kernels, distinct spaces
    assert other.digest == space.digest            # ...but identical interning
    assert other.size == space.size
    assert [other.label_of(i) for i in range(other.size)] == \
           [space.label_of(i) for i in range(space.size)]


def test_space_is_cached_per_kernel(small_kernel, space):
    assert small_kernel.coverage_space() is space
    assert CoverageSpace.for_kernel(small_kernel) is space
    assert CoverageSpace.by_digest(space.digest) is space


def test_space_covers_every_executed_label(small_kernel, space):
    """Everything the executor reports for a ground-truth driver interns."""
    executor = KernelExecutor(small_kernel)
    program = Program([
        Call("openat", "openat$dm", {"file": "/dev/mapper/control"}),
    ])
    result = executor.execute(program)
    assert result.coverage and not result.extras
    for label in result.labels():
        assert label in space


# ------------------------------------------------------------- set algebra
def test_empty_bitmap_identity():
    empty = CoverageBitmap()
    assert len(empty) == 0
    assert not empty
    assert empty == CoverageBitmap()
    assert empty.labels() == set()
    assert list(empty) == []
    assert empty.difference_count(empty) == 0


def test_empty_is_identity_for_union_and_difference(space):
    bitmap = CoverageBitmap.from_indices(space, {0, 2, 5})
    empty = CoverageBitmap()
    assert (bitmap | empty) == bitmap
    assert (empty | bitmap) == bitmap
    assert bitmap.difference_count(empty) == 3
    assert empty.difference_count(bitmap) == 0
    assert (empty | bitmap).digest == space.digest


def test_disjoint_union_and_difference(space):
    left = CoverageBitmap.from_indices(space, {0, 1})
    right = CoverageBitmap.from_indices(space, {2, 3, 4})
    union = left | right
    assert len(union) == 5
    assert union.labels() == left.labels() | right.labels()
    assert left.difference_count(right) == 2
    assert right.difference_count(left) == 3
    assert len(left - right) == 2


def test_superset_difference_is_zero(space):
    subset = CoverageBitmap.from_indices(space, {1, 3})
    superset = CoverageBitmap.from_indices(space, {0, 1, 2, 3})
    assert subset.difference_count(superset) == 0
    assert superset.difference_count(subset) == 2
    assert (subset | superset) == superset
    assert subset != superset


def test_extras_participate_in_algebra(space):
    with_extras = CoverageBitmap.from_indices(space, {0}, extras=("rds:weird:entry",))
    plain = CoverageBitmap.from_indices(space, {0})
    assert len(with_extras) == 2
    assert "rds:weird:entry" in with_extras
    assert with_extras.difference_count(plain) == 1
    assert with_extras.labels() - plain.labels() == {"rds:weird:entry"}
    assert (with_extras | plain).extras == frozenset({"rds:weird:entry"})


def test_mixed_space_operations_are_rejected(space, small_kernel):
    other_space = CoverageSpace(["a:open:0", "a:open:1"])
    left = CoverageBitmap.from_indices(space, {0})
    right = CoverageBitmap.from_indices(other_space, {1})
    with pytest.raises(ValueError):
        left | right
    with pytest.raises(ValueError):
        left.difference_count(right)


def test_mixed_space_error_is_typed_and_carries_digests(space):
    other_space = CoverageSpace(["a:open:0", "a:open:1"])
    left = CoverageBitmap.from_indices(space, {0})
    right = CoverageBitmap.from_indices(other_space, {1})
    with pytest.raises(CoverageSpaceMismatch) as excinfo:
        left | right
    assert excinfo.value.left_digest == space.digest
    assert excinfo.value.right_digest == other_space.digest
    with pytest.raises(CoverageSpaceMismatch):
        left - right


def test_bitmap_pickles_by_digest(space):
    bitmap = CoverageBitmap.from_indices(space, {0, 7, 31}, extras=("x:y:entry",))
    payload = pickle.dumps(bitmap)
    # The pickle carries bits + digest, not thousands of label strings.
    assert len(payload) < 200 + len(space.digest)
    clone = pickle.loads(payload)
    assert clone == bitmap
    assert clone.labels() == bitmap.labels()       # re-bound via the digest registry


def test_executor_reports_overflow_sockcall_labels(small_kernel):
    """A sockcall syscall outside the interned space lands in extras."""
    executor = KernelExecutor(small_kernel)
    socket = small_kernel.socket("rds")
    program = Program([
        Call("socket", "socket$rds",
             {"domain": socket.family_value, "type": socket.sock_type, "proto": socket.protocol}),
        Call("frobnicate", "frobnicate$rds", {"fd": ResourceValue(0)}),
    ])
    result = executor.execute(program)
    assert "rds:frobnicate:entry" in result.extras
    assert "rds:frobnicate:entry" in result.labels()


# ------------------------------------------------------- legacy equivalence
def _matrix_suites(small_kernel, kernelgpt, syzkaller_corpus):
    suites = {"syzkaller": syzkaller_corpus.flatten("syzkaller")}
    for handler in MATRIX_HANDLERS:
        result = kernelgpt.generate_for_handler(handler)
        if result.valid:
            suites[handler] = result.suite
    return suites


@pytest.mark.parametrize("seed,budget", [(13, 150), (1022, 400)])
def test_campaign_labels_equal_legacy_string_sets(
    small_kernel, kernelgpt, syzkaller_corpus, seed, budget
):
    """The property the whole rewrite hangs on: for every matrix suite, the
    bitmap campaign is *exactly* the legacy string-set campaign."""
    for label, suite in _matrix_suites(small_kernel, kernelgpt, syzkaller_corpus).items():
        reference = run_reference_campaign(small_kernel, suite, seed, budget)
        campaign = run_campaign(small_kernel, suite, seed, budget)
        assert campaign.coverage.labels() == reference.coverage, label
        assert campaign.coverage_count == len(reference.coverage), label
        assert sorted(campaign.crash_log.bug_ids()) == sorted(reference.crash_log.bug_ids()), label
        assert campaign.crash_log.observations == reference.crash_log.observations, label
        assert campaign.corpus_size == reference.corpus_size, label
        assert campaign.executed_calls == reference.executed_calls, label
        assert campaign.executed_programs == reference.executed_programs, label


def test_campaign_bitmap_survives_pickling(small_kernel, dm_result):
    """Campaigns round-trip through pickle (the engine task result path)."""
    campaign = Fuzzer(small_kernel, dm_result.suite, seed=3).run(200)
    clone = pickle.loads(pickle.dumps(campaign))
    assert clone.coverage == campaign.coverage
    assert clone.coverage.labels() == campaign.coverage.labels()
    assert clone.coverage_count == campaign.coverage_count


# ------------------------------------------------- config-pruned spaces
def _space_labels(space):
    return [space.label_of(index) for index in range(space.size)]


def test_prune_allyes_equals_full_space(small_kernel, space):
    pruned = prune_coverage_space(small_kernel, allyesconfig())
    assert pruned.digest == space.digest
    assert pruned.size == space.size
    assert _space_labels(pruned) == _space_labels(space)


def test_pruned_labels_match_loaded_owner_reference(small_kernel):
    """Per preset, the pruned space is exactly the full enumeration filtered
    to owners (drivers + their secondaries, sockets) the config loads —
    computed here independently, label by label, preserving order (rule 6)."""
    for preset in CONFIG_PRESETS.values():
        config = preset.kernel_config()
        owners = set()
        for driver in small_kernel.drivers.values():
            if config.loads(
                config_option=driver.config_option,
                hardware_gated=driver.hardware_gated,
                debug_only=driver.debug_only,
            ):
                owners.add(driver.name)
                owners.update(s.name for s in driver.secondary_handlers)
        for socket in small_kernel.sockets.values():
            if config.loads(
                config_option=socket.config_option,
                hardware_gated=socket.hardware_gated,
                debug_only=False,
            ):
                owners.add(socket.name)
        reference = [
            label
            for label in enumerate_kernel_labels(small_kernel)
            if label.split(":", 1)[0] in owners
        ]
        pruned = prune_coverage_space(small_kernel, preset)
        assert _space_labels(pruned) == reference, preset.name


def test_preset_flags_drop_guard_and_requires_blocks(small_kernel):
    base = CONFIG_PRESETS["fs-ioctl"]
    slim = type(base)(
        name=base.name,
        axes=base.axes,
        include_guards=False,
        include_requires=False,
    )
    full = prune_coverage_space(small_kernel, base)
    pruned = prune_coverage_space(small_kernel, slim)
    full_labels = set(_space_labels(full))
    slim_labels = set(_space_labels(pruned))
    dropped = full_labels - slim_labels
    assert dropped and not slim_labels - full_labels
    assert all(":guard" in label or label.endswith(":requires-missing") for label in dropped)
    assert full.digest != pruned.digest


def test_bitmaps_from_different_pruned_spaces_refuse_to_mix(small_kernel):
    left_space = prune_coverage_space(small_kernel, CONFIG_PRESETS["netlink"])
    right_space = prune_coverage_space(small_kernel, CONFIG_PRESETS["fs-ioctl"])
    assert left_space.digest != right_space.digest
    left = CoverageBitmap.from_indices(left_space, {0, 1})
    right = CoverageBitmap.from_indices(right_space, {0, 1})
    with pytest.raises(CoverageSpaceMismatch):
        left | right
    with pytest.raises(CoverageSpaceMismatch):
        left.difference_count(right)
    # The supported cross-config comparison: plain label sets.
    assert isinstance(left.labels() - right.labels(), set)
