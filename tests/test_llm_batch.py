"""Batch-protocol semantics: dedupe, ordering, budgets, routing, single-flight.

The contract under test (see DESIGN.md "Batched LLM query protocol"):

* ``complete_batch`` returns completions **in request order**;
* identical requests within one batch are **deduped** — computed and
  metered once, the shared completion returned at every position;
* the query budget is reserved at batch granularity but raises at the
  **exact same query index** as a serial loop of single queries (the
  in-budget prefix completes and is metered before the raise);
* ``query()`` is a thin one-element shim over ``complete_batch``;
* :class:`BackendPool` routes by tag/kind to member backends, keeps
  per-member meters/budgets, and reports a merged usage summary;
* ``ExecutionEngine.cached_query_batch`` is single-flight per distinct
  prompt across concurrent batches.
"""

import threading

import pytest

from repro.engine import ExecutionEngine, MemoCache
from repro.errors import LLMBudgetExceeded
from repro.llm import (
    BackendPool,
    DegradedBackend,
    LLMRequest,
    OracleBackend,
    Prompt,
    RecordingBackend,
    ReplayBackend,
)

IDENT_REPLY = "## IDENTIFIERS\n- IDENT: X | SYSCALL: ioctl\n## UNKNOWN\n(none)\n"


def _prompt(index: int, kind: str = "identifier") -> Prompt:
    return Prompt(kind=kind, subject=f"subject-{index}", text=f"## Registration\nprobe {index}\n")


# ------------------------------------------------------------ batch basics
def test_complete_batch_returns_request_order():
    backend = ReplayBackend(default="fallback")
    prompts = [_prompt(index) for index in range(6)]
    for index, prompt in enumerate(prompts):
        backend.script(prompt, f"reply-{index}")
    shuffled = [prompts[i] for i in (3, 0, 5, 1, 4, 2)]
    completions = backend.complete_batch(shuffled)
    assert [c.text for c in completions] == [f"reply-{i}" for i in (3, 0, 5, 1, 4, 2)]


def test_in_batch_dedupe_computes_and_meters_once():
    backend = OracleBackend()
    prompt = _prompt(0)
    other = _prompt(1)
    completions = backend.complete_batch([prompt, other, prompt, prompt])
    # Duplicates are served the shared completion, in request order.
    assert completions[0].text == completions[2].text == completions[3].text
    # One recorded query per *distinct* request, not per position.
    assert backend.usage.queries == 2


def test_query_is_a_one_element_batch_shim():
    calls = []

    class Probe(OracleBackend):
        def complete_batch(self, requests):
            calls.append(len(requests))
            return super().complete_batch(requests)

    backend = Probe()
    backend.query(_prompt(0))
    assert calls == [1]
    assert backend.usage.queries == 1


def test_all_shipped_backends_serve_batches():
    replay = ReplayBackend(default=IDENT_REPLY)
    backends = [
        OracleBackend(),
        DegradedBackend.gpt35(),
        ReplayBackend(default=IDENT_REPLY),
        RecordingBackend(replay),
    ]
    prompts = [_prompt(0), _prompt(1)]
    for backend in backends:
        completions = backend.complete_batch(prompts)
        assert len(completions) == 2
        assert backend.usage.queries == 2


# ---------------------------------------------------------------- budgets
def _serial_budget_state(budget: int, prompts):
    backend = OracleBackend(query_budget=budget)
    raised_at = None
    for index, prompt in enumerate(prompts):
        try:
            backend.query(prompt)
        except LLMBudgetExceeded:
            raised_at = index
            break
    return backend, raised_at


def test_batch_budget_raises_at_same_query_index_as_serial():
    prompts = [_prompt(index) for index in range(7)]
    serial, raised_at = _serial_budget_state(4, prompts)
    assert raised_at == 4

    batched = OracleBackend(query_budget=4)
    with pytest.raises(LLMBudgetExceeded):
        batched.complete_batch(prompts)
    # The in-budget prefix completed and was metered before the raise —
    # exactly the state the serial loop left behind.
    assert batched.usage.queries == serial.usage.queries == 4
    assert batched.usage.input_tokens == serial.usage.input_tokens
    assert batched.usage.summary() == serial.usage.summary()


def test_batch_budget_counts_distinct_requests_only():
    backend = OracleBackend(query_budget=2)
    prompt = _prompt(0)
    # Four positions, two distinct prompts: fits a budget of two.
    completions = backend.complete_batch([prompt, prompt, _prompt(1), prompt])
    assert len(completions) == 4
    assert backend.usage.queries == 2
    with pytest.raises(LLMBudgetExceeded):
        backend.query(_prompt(2))


# ------------------------------------------------------------ BackendPool
def _two_member_pool() -> BackendPool:
    return BackendPool(
        {
            "gpt-4": ReplayBackend(default="strong"),
            "gpt-3.5": ReplayBackend(default="weak"),
        }
    )


def test_pool_routes_by_tag_and_falls_back_to_default():
    pool = _two_member_pool()
    prompt = _prompt(0)
    routed = pool.complete_batch(
        [
            LLMRequest(prompt=prompt, route="gpt-3.5"),
            LLMRequest(prompt=prompt, route="gpt-4"),
            LLMRequest(prompt=prompt),  # no tag -> default member (first)
        ]
    )
    assert [completion.text for completion in routed] == ["weak", "strong", "strong"]


def test_pool_routes_by_prompt_kind_through_route_table():
    pool = BackendPool(
        {
            "gpt-4": ReplayBackend(default="strong"),
            "gpt-3.5": ReplayBackend(default="weak"),
        },
        routes={"repair": "gpt-3.5"},
    )
    assert pool.query(_prompt(0, kind="repair")).text == "weak"
    assert pool.query(_prompt(0, kind="identifier")).text == "strong"


def test_pool_rejects_bad_configuration():
    member = ReplayBackend(default="x")
    with pytest.raises(ValueError):
        BackendPool({})
    with pytest.raises(ValueError):
        BackendPool({"a": member}, default="missing")
    with pytest.raises(ValueError):
        BackendPool({"a": member}, routes={"tag": "missing"})


def test_pool_meters_merged_and_per_member_usage():
    pool = _two_member_pool()
    prompt = _prompt(0)
    pool.complete_batch(
        [
            LLMRequest(prompt=prompt, route="gpt-4"),
            LLMRequest(prompt=_prompt(1), route="gpt-3.5"),
            LLMRequest(prompt=_prompt(2), route="gpt-3.5"),
        ]
    )
    summary = pool.usage_summary()
    assert summary["merged"]["queries"] == 3
    assert summary["by_member"]["gpt-4"]["queries"] == 1
    assert summary["by_member"]["gpt-3.5"]["queries"] == 2


def test_pool_member_budget_raises_from_sub_batch():
    pool = BackendPool(
        {
            "limited": ReplayBackend(default="x", query_budget=1),
            "open": ReplayBackend(default="y"),
        }
    )
    pool.query(_prompt(0))  # default member is "limited"; consumes its budget
    with pytest.raises(LLMBudgetExceeded):
        pool.complete_batch([LLMRequest(prompt=_prompt(1), route="limited")])
    # The open member still serves.
    assert pool.complete_batch([LLMRequest(prompt=_prompt(2), route="open")])[0].text == "y"


# ------------------------------------------------- round-robin scheduling
def test_round_robin_balances_untagged_requests():
    """Untagged requests cycle members in declaration order; tags still win."""
    pool = BackendPool(
        {
            "gpt-4": ReplayBackend(default="strong"),
            "gpt-3.5": ReplayBackend(default="weak"),
        },
        schedule="round-robin",
    )
    untagged = [_prompt(index) for index in range(4)]
    texts = [c.text for c in pool.complete_batch(untagged)]
    assert texts == ["strong", "weak", "strong", "weak"]
    # The cursor persists across batches...
    assert pool.complete_batch([_prompt(9)])[0].text == "strong"
    # ...and tagged requests never consult the scheduler.
    assert pool.complete_batch([LLMRequest(prompt=_prompt(10), route="gpt-3.5")])[0].text == "weak"
    assert pool.complete_batch([_prompt(11)])[0].text == "weak"


def test_round_robin_skips_budget_exhausted_members():
    pool = BackendPool(
        {
            "limited": ReplayBackend(default="limited-reply", query_budget=1),
            "open": ReplayBackend(default="open-reply"),
        },
        schedule="round-robin",
    )
    texts = [c.text for c in pool.complete_batch([_prompt(index) for index in range(4)])]
    # First request lands on "limited" and exhausts it; the rest fall
    # through to the member with budget remaining.
    assert texts == ["limited-reply", "open-reply", "open-reply", "open-reply"]


def test_round_robin_all_exhausted_falls_back_to_default():
    pool = BackendPool(
        {
            "a": ReplayBackend(default="a", query_budget=1),
            "b": ReplayBackend(default="b", query_budget=1),
        },
        schedule="round-robin",
    )
    assert [c.text for c in pool.complete_batch([_prompt(0), _prompt(1)])] == ["a", "b"]
    # Every member exhausted: the default member serves and raises its own
    # budget error, exactly like a direct over-budget call.
    with pytest.raises(LLMBudgetExceeded):
        pool.complete_batch([_prompt(2)])


def test_tagged_schedule_keeps_legacy_default_placement():
    pool = _two_member_pool()
    assert pool.schedule == "tagged"
    texts = [c.text for c in pool.complete_batch([_prompt(index) for index in range(3)])]
    assert texts == ["strong", "strong", "strong"]   # untagged -> default member
    assert pool.resolve_member(_prompt(0)) == "gpt-4"


def test_pool_rejects_unknown_schedule():
    with pytest.raises(ValueError):
        BackendPool({"gpt-4": ReplayBackend(default="x")}, schedule="random")


def test_remaining_budget_snapshot():
    backend = ReplayBackend(default="x", query_budget=2)
    assert backend.remaining_budget() == 2
    backend.query(_prompt(0))
    assert backend.remaining_budget() == 1
    assert ReplayBackend(default="y").remaining_budget() is None


def test_pool_backed_generation_matches_direct_backend(small_kernel, extractor):
    """A routed pool member produces the suite its standalone profile does."""
    from repro.core import KernelGPT

    direct = KernelGPT(small_kernel, DegradedBackend.gpt35(), extractor=extractor)
    baseline = direct.generate_for_handler("dm_ctl_fops")

    pool = BackendPool({"gpt-4": DegradedBackend.gpt4(), "gpt-3.5": DegradedBackend.gpt35()})
    routed = KernelGPT(small_kernel, pool, extractor=extractor, backend_route="gpt-3.5")
    result = routed.generate_for_handler("dm_ctl_fops")
    assert result.suite_text() == baseline.suite_text()
    assert result.queries == baseline.queries


# -------------------------------------------------- engine batch memoization
def test_cached_query_batch_dedupes_within_and_across_batches():
    engine = ExecutionEngine(jobs=1)
    backend = OracleBackend()
    prompts = [_prompt(0), _prompt(1), _prompt(0)]
    first = engine.cached_query_batch(backend, prompts)
    assert first[0].text == first[2].text
    assert backend.usage.queries == 2          # distinct prompts only
    assert engine.llm_cache.stats.misses == 2
    assert engine.llm_cache.stats.hits == 1    # the in-batch duplicate

    second = engine.cached_query_batch(backend, prompts)
    assert [completion.text for completion in second] == [completion.text for completion in first]
    assert backend.usage.queries == 2          # fully served from memory
    assert engine.llm_cache.stats.hits == 4


def test_cached_query_batch_single_flight_across_concurrent_batches():
    engine = ExecutionEngine(jobs=1)
    backend = OracleBackend()
    prompts = [_prompt(index) for index in range(4)]
    barrier = threading.Barrier(4)
    outputs: dict[int, list[str]] = {}

    def worker(worker_index: int) -> None:
        barrier.wait()
        completions = engine.cached_query_batch(backend, prompts)
        outputs[worker_index] = [completion.text for completion in completions]

    threads = [threading.Thread(target=worker, args=(index,)) for index in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(outputs[index] == outputs[0] for index in range(4))
    # Exactly one compute per distinct prompt across all concurrent batches.
    assert backend.usage.queries == len(prompts)
    assert engine.llm_cache.stats.misses == len(prompts)
    assert engine.llm_cache.stats.hits == 3 * len(prompts)


def test_cached_query_batch_keys_include_route():
    engine = ExecutionEngine(jobs=1)
    pool = BackendPool({"gpt-4": ReplayBackend(default="strong"),
                        "gpt-3.5": ReplayBackend(default="weak")})
    prompt = _prompt(0)
    strong = engine.cached_query_batch(pool, [LLMRequest(prompt=prompt, route="gpt-4")])
    weak = engine.cached_query_batch(pool, [LLMRequest(prompt=prompt, route="gpt-3.5")])
    # Same prompt, different route: never served each other's completion.
    assert strong[0].text == "strong" and weak[0].text == "weak"


def test_get_or_compute_many_failure_clears_owned_entries():
    cache = MemoCache("test")

    def explode(positions):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        cache.get_or_compute_many(["a", "b"], explode)
    assert cache.stats.errors == 2
    assert cache.stats.misses == 0
    # Entries were removed: a later call retries and succeeds.
    values = cache.get_or_compute_many(["a", "b"], lambda positions: [f"v{p}" for p in positions])
    assert values == ["v0", "v1"]
    assert cache.stats.misses == 2


# ------------------------------------------------------- session batching
def test_session_query_batch_attributes_every_request(small_kernel, extractor):
    from repro.core import KernelGPT

    generator = KernelGPT(small_kernel, OracleBackend(), extractor=extractor,
                          engine=ExecutionEngine(jobs=1))
    session = generator.session("dm_ctl_fops")
    prompts = [_prompt(0), _prompt(0), _prompt(1)]
    completions = session.query_batch(prompts)
    assert len(completions) == 3
    # Attribution counts requests (cache hits included), like the serial path.
    assert session.queries == 3
    # The backend computed only the distinct prompts.
    assert generator.backend.usage.queries == 2
