"""Integration tests for the experiment harness (on the small kernel)."""

import pytest

from repro.experiments import (
    EvaluationContext, quick, run_ablation_iterative, run_figure7, run_table1,
    run_table2, run_correctness_audit,
)


@pytest.fixture(scope="module")
def small_ctx(small_kernel):
    config = quick().with_overrides(kernel_scale="small", per_driver_budget=200,
                                    overall_budget=400, bug_budget=400, ablation_drivers=2)
    return EvaluationContext(config, kernel=small_kernel)


def test_table1_structure(small_ctx):
    table = run_table1(small_ctx)
    assert table.headers[0] == "Kind"
    kinds = table.column("Kind")
    assert kinds == ["Driver", "Socket", "Total"]
    assert table.render().startswith("Table 1")


def test_table1_kernelgpt_beats_syzdescribe(small_ctx):
    table = run_table1(small_ctx)
    total_row = table.row_for("Total")
    syzdescribe_valid = int(total_row[3])
    kernelgpt_valid = int(str(total_row[4]).split()[0])
    assert kernelgpt_valid > syzdescribe_valid


def test_table2_counts_positive(small_ctx):
    table = run_table2(small_ctx)
    total = table.row_for("Total")
    assert int(total[3]) > 0 and int(total[4]) > 0


def test_figure7_bins_sum_to_incomplete_handlers(small_ctx):
    table = run_figure7(small_ctx)
    report = small_ctx.selection.report
    driver_total = sum(int(v) for v in table.column("# Driver handlers"))
    assert driver_total == len(report.incomplete("driver"))


def test_correctness_audit_reports_low_error_rates(small_ctx):
    audit = run_correctness_audit(small_ctx)
    assert audit.drivers_audited > 0
    assert audit.wrong_identifiers <= audit.total_syscalls * 0.1


def test_ablation_iterative_beats_all_in_one(small_ctx):
    table = run_ablation_iterative(small_ctx, drivers=("kvm", "ppp"))
    total = table.row_for("Total")
    assert int(total[1]) >= int(total[4])


def test_runner_cli_single_experiment(tmp_path, monkeypatch):
    from repro.experiments import runner
    # Exercise argument parsing and dispatch without the heavy experiments.
    assert "table1" in runner.EXPERIMENTS
    with pytest.raises(SystemExit):
        runner.run_experiment("nope", None)
